//! Negotiated wire codec for weight exchange: delta encoding, f16/int8
//! quantization with error feedback, and optional top-k sparsification.
//!
//! Raw federated rounds ship every tensor as full little-endian f32 in
//! both directions (see [`crate::wire`]); at 8 sites that is ~40 MB per
//! round for the paper's LSTM. This module implements the compressed
//! alternative, negotiated per client at registration time (see the
//! DESIGN.md §3g wire-format spec for the normative layout):
//!
//! * **Delta encoding** — payloads are encoded against a *base* payload
//!   identified by `base_id`. The server keeps a [`GlobalRing`] of recent
//!   globals so stragglers can still delta against an older round; the
//!   client mirrors it with a [`PayloadCache`]. When the quantizer is
//!   lossless (`f32`), deltas are XOR-of-bits + run-length encoding, so
//!   `decode(encode(w)) == w` *bit-exactly* and unchanged tensors
//!   collapse to a few bytes.
//! * **Quantization** — `f16` (IEEE 754 binary16) or `int8` (symmetric,
//!   per-tensor scale = max|v|/127, zero-point fixed at 0). Lossy
//!   uplink encoders carry the rounding residue into the next round via
//!   an [`ErrorFeedback`] accumulator; the downlink chain gets the same
//!   property structurally, because each canonical delta is computed
//!   against the *reconstruction* of the previous payload.
//! * **Top-k sparsification** — keeps the `k = ⌈numel·f⌉` largest-|v|
//!   coordinates (ties broken toward lower indices) as sorted
//!   index+value pairs, composed *before* quantization.
//!
//! Every [`EncodedWeights`] frame carries a codec tag, the payload/base
//! identifiers, and a CRC-32 trailer (same polynomial as
//! [`crate::checkpoint`]), so truncation or bit-flips that slip past the
//! transport MAC are still rejected deterministically.

use crate::checkpoint::crc32;
use crate::dxo::{WeightTensor, Weights};
use crate::wire::{WireDecode, WireEncode, WireReader};
use crate::FlareError;
use std::collections::{BTreeMap, VecDeque};

/// Sentinel `base_id`: the frame is self-contained (no delta base).
pub const NO_BASE: u32 = u32::MAX;

/// Default depth of the server's [`GlobalRing`] and the client's
/// [`PayloadCache`]: deep enough that a straggler two full rounds behind
/// (Train + Validate payloads per round) still finds its base.
pub const DEFAULT_RING_DEPTH: usize = 8;

/// Largest tensor the decoder will materialize (elements). Frames are
/// attacker-controlled bytes; this bounds allocation before any data is
/// trusted.
const MAX_DECODE_ELEMS: usize = 1 << 31;

/// Bumps a `flare.wire.*` counter when obs is enabled (shared by the
/// client and server codec paths; cold, so the registry lookup is fine).
pub(crate) fn wire_count(name: &str, n: u64) {
    if clinfl_obs::enabled() {
        clinfl_obs::counter(name).add(n);
    }
}

// ---------------------------------------------------------------------
// Codec specification & negotiation strings
// ---------------------------------------------------------------------

/// Quantization applied to transmitted values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantMode {
    /// No quantization: exact f32 values (lossless).
    F32,
    /// IEEE 754 binary16 (half precision), round-to-nearest-even.
    F16,
    /// Symmetric int8: `v ≈ q * scale`, `scale = max|v| / 127`,
    /// zero-point fixed at 0 (the field exists in the wire spec for
    /// forward compatibility but is always zero in protocol v1).
    Int8,
}

/// A parsed wire-codec choice, e.g. `delta+int8` or `delta+topk0.05+f16`.
///
/// The string form (see [`CodecSpec::parse`]) is what clients propose at
/// negotiation time and what `RuntimeConfig::wire_codec` holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecSpec {
    /// Encode payloads as deltas against an acknowledged base payload.
    pub delta: bool,
    /// Quantization mode for transmitted values.
    pub quant: QuantMode,
    /// Top-k sparsification fraction in permille (1..=1000); `None`
    /// sends all coordinates.
    pub topk_permille: Option<u16>,
}

impl CodecSpec {
    /// The identity codec: full f32 tensors, exactly the legacy format's
    /// information content.
    pub fn raw() -> Self {
        CodecSpec {
            delta: false,
            quant: QuantMode::F32,
            topk_permille: None,
        }
    }

    /// True when this spec performs no transformation at all.
    pub fn is_raw(&self) -> bool {
        !self.delta && self.quant == QuantMode::F32 && self.topk_permille.is_none()
    }

    /// True when encode→decode is bit-exact (no quantization, no
    /// sparsification). Bit-exact specs keep mixed-fleet federations and
    /// chaos-resume runs byte-identical to all-raw runs.
    pub fn is_lossless(&self) -> bool {
        self.quant == QuantMode::F32 && self.topk_permille.is_none()
    }

    /// Parses a codec string: `+`-separated components from
    /// `raw | delta | f32 | f16 | int8 | topk<fraction>`, e.g.
    /// `"delta+int8"` or `"delta+topk0.05+int8"`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown or duplicate
    /// components and out-of-range top-k fractions.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim().to_ascii_lowercase();
        if s.is_empty() {
            return Err("empty codec spec".into());
        }
        let mut spec = CodecSpec::raw();
        let mut saw_quant = false;
        for part in s.split('+') {
            match part {
                "raw" | "f32" => {
                    if saw_quant {
                        return Err(format!("duplicate quantizer in {s:?}"));
                    }
                    saw_quant = true;
                }
                "delta" => {
                    if spec.delta {
                        return Err(format!("duplicate delta in {s:?}"));
                    }
                    spec.delta = true;
                }
                "f16" | "int8" => {
                    if saw_quant {
                        return Err(format!("duplicate quantizer in {s:?}"));
                    }
                    saw_quant = true;
                    spec.quant = if part == "f16" {
                        QuantMode::F16
                    } else {
                        QuantMode::Int8
                    };
                }
                p if p.starts_with("topk") => {
                    if spec.topk_permille.is_some() {
                        return Err(format!("duplicate topk in {s:?}"));
                    }
                    let frac: f64 = p[4..]
                        .parse()
                        .map_err(|_| format!("bad topk fraction in {p:?}"))?;
                    if !(frac > 0.0 && frac <= 1.0) {
                        return Err(format!("topk fraction {frac} outside (0, 1]"));
                    }
                    let pm = (frac * 1000.0).round() as u16;
                    spec.topk_permille = Some(pm.clamp(1, 1000));
                }
                other => return Err(format!("unknown codec component {other:?}")),
            }
        }
        Ok(spec)
    }

    /// Canonical one-byte codec tag carried by every encoded frame:
    /// bit 0 = delta, bits 1–2 = quantizer (0 = f32, 1 = f16, 2 = int8),
    /// bit 3 = top-k.
    pub fn tag(&self) -> u8 {
        let q = match self.quant {
            QuantMode::F32 => 0u8,
            QuantMode::F16 => 1,
            QuantMode::Int8 => 2,
        };
        (self.delta as u8) | (q << 1) | ((self.topk_permille.is_some() as u8) << 3)
    }
}

impl std::fmt::Display for CodecSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_raw() {
            return f.write_str("raw");
        }
        let mut parts: Vec<String> = Vec::new();
        if self.delta {
            parts.push("delta".into());
        }
        if let Some(pm) = self.topk_permille {
            parts.push(format!("topk{}", f64::from(pm) / 1000.0));
        }
        match self.quant {
            QuantMode::F32 => {}
            QuantMode::F16 => parts.push("f16".into()),
            QuantMode::Int8 => parts.push("int8".into()),
        }
        f.write_str(&parts.join("+"))
    }
}

/// Codec families this build understands, advertised in the
/// negotiation acknowledgement so clients can diagnose rejections.
pub const SUPPORTED_CODECS: &[&str] = &["raw", "delta", "f16", "int8", "topk<f>"];

// ---------------------------------------------------------------------
// f16 conversion (no half-float crate in the offline dependency set)
// ---------------------------------------------------------------------

/// Converts f32 to IEEE 754 binary16 bits, round-to-nearest-even, with
/// overflow to ±inf and underflow through subnormals to ±0.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN; keep NaN recognizable by forcing a mantissa bit.
        let payload = (man >> 13) as u16 & 0x03ff;
        let nan = if man != 0 && payload == 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan | payload;
    }
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow → inf
    }
    if e <= 0 {
        if e < -10 {
            return sign; // underflows even the smallest subnormal
        }
        let man = man | 0x0080_0000; // restore the implicit bit
        let shift = (14 - e) as u32; // 14..=24
        let half = man >> shift;
        let rem = man & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = if rem > halfway || (rem == halfway && half & 1 == 1) {
            half + 1
        } else {
            half
        };
        return sign | rounded as u16;
    }
    let half = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    let rounded = if rem > 0x1000 || (rem == 0x1000 && half & 1 == 1) {
        half + 1 // carry may roll into the exponent (or to inf) — correct
    } else {
        half
    };
    sign | rounded as u16
}

/// Converts IEEE 754 binary16 bits back to f32 (exact).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1f;
    let man = u32::from(h & 0x3ff);
    let bits = if exp == 0x1f {
        sign | 0x7f80_0000 | (man << 13)
    } else if exp == 0 {
        if man == 0 {
            sign
        } else {
            // Subnormal: renormalize into the f32 format.
            let mut e = 113u32; // 127 - 14
            let mut m = man << 13;
            while m & 0x0080_0000 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | (e << 23) | (m & 0x007f_ffff)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

// ---------------------------------------------------------------------
// Zero run-length encoding for packed byte payloads
// ---------------------------------------------------------------------

/// Compresses runs of zero bytes: a sequence of
/// `[zero_run: u16 LE][literal_len: u16 LE][literal bytes]` records.
/// Worst case (alternating single zeros) expands, so callers keep the
/// smaller of raw vs packed (see [`rle_pack`]).
pub fn rle_compress(bytes: &[u8]) -> Vec<u8> {
    let cap = usize::from(u16::MAX);
    let mut out = Vec::with_capacity(bytes.len() / 4 + 8);
    let mut i = 0;
    while i < bytes.len() {
        let zs = i;
        while i < bytes.len() && bytes[i] == 0 && i - zs < cap {
            i += 1;
        }
        let ls = i;
        while i < bytes.len() && bytes[i] != 0 && i - ls < cap {
            i += 1;
        }
        out.extend_from_slice(&((ls - zs) as u16).to_le_bytes());
        out.extend_from_slice(&((i - ls) as u16).to_le_bytes());
        out.extend_from_slice(&bytes[ls..i]);
    }
    out
}

/// Reverses [`rle_compress`]; `expected_len` bounds the allocation and
/// must match exactly.
///
/// # Errors
///
/// [`FlareError::Codec`] on truncated records or length mismatch.
pub fn rle_decompress(data: &[u8], expected_len: usize) -> Result<Vec<u8>, FlareError> {
    let mut out = Vec::with_capacity(expected_len.min(MAX_DECODE_ELEMS));
    let mut i = 0;
    while i < data.len() {
        if data.len() - i < 4 {
            return Err(FlareError::Codec("truncated RLE record".into()));
        }
        let zrun = usize::from(u16::from_le_bytes([data[i], data[i + 1]]));
        let lit = usize::from(u16::from_le_bytes([data[i + 2], data[i + 3]]));
        i += 4;
        if lit > data.len() - i {
            return Err(FlareError::Codec("RLE literal overruns input".into()));
        }
        if out.len() + zrun + lit > expected_len {
            return Err(FlareError::Codec(
                "RLE output exceeds expected length".into(),
            ));
        }
        out.resize(out.len() + zrun, 0);
        out.extend_from_slice(&data[i..i + lit]);
        i += lit;
    }
    if out.len() != expected_len {
        return Err(FlareError::Codec(format!(
            "RLE output {} bytes, expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Picks the smaller of the raw bytes and their RLE form; the bool is
/// the `rle` wire flag.
pub fn rle_pack(bytes: Vec<u8>) -> (bool, Vec<u8>) {
    let packed = rle_compress(&bytes);
    if packed.len() < bytes.len() {
        (true, packed)
    } else {
        (false, bytes)
    }
}

fn rle_unpack(rle: bool, bytes: &[u8], expected_len: usize) -> Result<Vec<u8>, FlareError> {
    if rle {
        rle_decompress(bytes, expected_len)
    } else if bytes.len() == expected_len {
        Ok(bytes.to_vec())
    } else {
        Err(FlareError::Codec(format!(
            "packed payload {} bytes, expected {expected_len}",
            bytes.len()
        )))
    }
}

// ---------------------------------------------------------------------
// Encoded frame types
// ---------------------------------------------------------------------

/// Values of one top-k sparsified tensor, in the selected quantization.
#[derive(Clone, Debug, PartialEq)]
pub enum SparseValues {
    /// Exact f32 values.
    F32(Vec<f32>),
    /// binary16 values.
    F16(Vec<u16>),
    /// Symmetric int8 values with their per-tensor scale.
    Int8 {
        /// Dequantization scale (`v ≈ q * scale`).
        scale: f32,
        /// One two's-complement byte per kept coordinate.
        bytes: Vec<u8>,
    },
}

/// One tensor's encoded body.
#[derive(Clone, Debug, PartialEq)]
pub enum TensorBody {
    /// Bitwise-identical to the base tensor (delta frames only).
    Same,
    /// Dense exact f32 values (self-contained full frames).
    F32(Vec<f32>),
    /// Lossless delta: value bits XOR base bits, optionally RLE-packed.
    Xor {
        /// Whether `bytes` is RLE-packed.
        rle: bool,
        /// `numel * 4` XOR bytes (after unpacking).
        bytes: Vec<u8>,
    },
    /// Dense binary16 values (absolute, or deltas when the frame has a
    /// base).
    F16(Vec<u16>),
    /// Dense symmetric int8 values.
    Int8 {
        /// Dequantization scale (`v ≈ q * scale`).
        scale: f32,
        /// Whether `bytes` is RLE-packed.
        rle: bool,
        /// One byte per element (after unpacking).
        bytes: Vec<u8>,
    },
    /// Top-k sparse coordinates: strictly increasing indices plus values.
    Sparse {
        /// Flat indices into the row-major tensor, strictly increasing.
        indices: Vec<u32>,
        /// The kept values.
        values: SparseValues,
    },
}

/// One encoded tensor: its shape plus the encoded body.
#[derive(Clone, Debug, PartialEq)]
pub struct EncodedTensor {
    /// Tensor shape (row-major).
    pub dims: Vec<usize>,
    /// Encoded payload.
    pub body: TensorBody,
}

/// A complete encoded weight set: the compressed replacement for a raw
/// [`Weights`] map inside `TrainEnc` / `ValidateEnc` / `SubmitEnc`
/// messages. The wire form ends in a CRC-32 of the frame body.
#[derive(Clone, Debug, PartialEq)]
pub struct EncodedWeights {
    /// Codec tag of the spec that produced this frame (see
    /// [`CodecSpec::tag`]); informational, for logs and forensics.
    pub tag: u8,
    /// Identifier of this payload in the sender's ring (0 on uplink
    /// frames, which are never used as delta bases).
    pub payload_id: u32,
    /// Base payload this frame is a delta against, or [`NO_BASE`].
    pub base_id: u32,
    /// True when the payload is bitwise-identical to the base: `tensors`
    /// is empty and the receiver reuses its reconstruction of `base_id`.
    pub alias: bool,
    /// Per-tensor encoded bodies.
    pub tensors: BTreeMap<String, EncodedTensor>,
}

impl SparseValues {
    fn len(&self) -> usize {
        match self {
            SparseValues::F32(v) => v.len(),
            SparseValues::F16(v) => v.len(),
            SparseValues::Int8 { bytes, .. } => bytes.len(),
        }
    }
}

// ---------------------------------------------------------------------
// Wire encoding of the frame types
// ---------------------------------------------------------------------

fn encode_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    bytes.len().encode(out);
    out.extend_from_slice(bytes);
}

fn decode_bytes(r: &mut WireReader<'_>) -> Result<Vec<u8>, FlareError> {
    let n = usize::decode(r)?;
    if n > r.remaining() {
        return Err(FlareError::Codec(format!(
            "byte payload claims {n} bytes with {} left",
            r.remaining()
        )));
    }
    Ok(r.take_bytes(n)?.to_vec())
}

impl WireEncode for SparseValues {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SparseValues::F32(v) => {
                0u8.encode(out);
                v.encode(out);
            }
            SparseValues::F16(v) => {
                1u8.encode(out);
                v.encode(out);
            }
            SparseValues::Int8 { scale, bytes } => {
                2u8.encode(out);
                scale.encode(out);
                encode_bytes(bytes, out);
            }
        }
    }
}

impl WireDecode for SparseValues {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        match u8::decode(r)? {
            0 => Ok(SparseValues::F32(Vec::decode(r)?)),
            1 => Ok(SparseValues::F16(Vec::decode(r)?)),
            2 => Ok(SparseValues::Int8 {
                scale: f32::decode(r)?,
                bytes: decode_bytes(r)?,
            }),
            t => Err(FlareError::Codec(format!("unknown sparse-values tag {t}"))),
        }
    }
}

impl WireEncode for TensorBody {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TensorBody::Same => 0u8.encode(out),
            TensorBody::F32(v) => {
                1u8.encode(out);
                v.encode(out);
            }
            TensorBody::Xor { rle, bytes } => {
                2u8.encode(out);
                rle.encode(out);
                encode_bytes(bytes, out);
            }
            TensorBody::F16(v) => {
                3u8.encode(out);
                v.encode(out);
            }
            TensorBody::Int8 { scale, rle, bytes } => {
                4u8.encode(out);
                scale.encode(out);
                rle.encode(out);
                encode_bytes(bytes, out);
            }
            TensorBody::Sparse { indices, values } => {
                5u8.encode(out);
                indices.encode(out);
                values.encode(out);
            }
        }
    }
}

impl WireDecode for TensorBody {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        match u8::decode(r)? {
            0 => Ok(TensorBody::Same),
            1 => Ok(TensorBody::F32(Vec::decode(r)?)),
            2 => Ok(TensorBody::Xor {
                rle: bool::decode(r)?,
                bytes: decode_bytes(r)?,
            }),
            3 => Ok(TensorBody::F16(Vec::decode(r)?)),
            4 => Ok(TensorBody::Int8 {
                scale: f32::decode(r)?,
                rle: bool::decode(r)?,
                bytes: decode_bytes(r)?,
            }),
            5 => Ok(TensorBody::Sparse {
                indices: Vec::decode(r)?,
                values: SparseValues::decode(r)?,
            }),
            t => Err(FlareError::Codec(format!("unknown tensor-body tag {t}"))),
        }
    }
}

impl WireEncode for EncodedTensor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.dims.encode(out);
        self.body.encode(out);
    }
}

impl WireDecode for EncodedTensor {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        Ok(EncodedTensor {
            dims: Vec::decode(r)?,
            body: TensorBody::decode(r)?,
        })
    }
}

impl WireEncode for EncodedWeights {
    fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        self.tag.encode(out);
        self.payload_id.encode(out);
        self.base_id.encode(out);
        self.alias.encode(out);
        self.tensors.encode(out);
        // CRC-32 trailer over the body encoded above (checkpoint-style
        // corruption rejection on the wire).
        crc32(&out[start..]).encode(out);
    }
}

impl WireDecode for EncodedWeights {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        let mark = r.mark();
        let tag = u8::decode(r)?;
        let payload_id = u32::decode(r)?;
        let base_id = u32::decode(r)?;
        let alias = bool::decode(r)?;
        let tensors = BTreeMap::decode(r)?;
        let want = crc32(r.since(mark));
        let got = u32::decode(r)?;
        if want != got {
            wire_count("flare.wire.codec.crc_rejects", 1);
            return Err(FlareError::Codec(format!(
                "encoded-weights CRC mismatch: stored {got:#010x}, computed {want:#010x}"
            )));
        }
        Ok(EncodedWeights {
            tag,
            payload_id,
            base_id,
            alias,
            tensors,
        })
    }
}

// ---------------------------------------------------------------------
// Raw-equivalent sizes (for the flare.wire.bytes_*_raw counters)
// ---------------------------------------------------------------------

/// Exact wire size in bytes of a [`Weights`] map in the raw (legacy)
/// encoding — pinned by a test against the actual encoder so the
/// `flare.wire.bytes_*_raw` counters cannot drift from reality.
pub fn raw_weights_wire_size(w: &Weights) -> u64 {
    // Map length prefix, then per entry: length-prefixed name, dims
    // (count + one u64 each), data (count + one f32 each).
    8 + w
        .iter()
        .map(|(k, t)| 8 + k.len() as u64 + 8 + 8 * t.dims.len() as u64 + 8 + 4 * t.numel() as u64)
        .sum::<u64>()
}

/// Raw-equivalent size of a `ServerMessage::Task` frame carrying
/// `weights` (Train or Validate — both add 1 message tag + 1 task tag +
/// one or two u32 round fields to the 3-byte frame magic).
pub fn raw_task_frame_size(w: &Weights, is_train: bool) -> u64 {
    let rounds = if is_train { 8 } else { 4 };
    3 + 1 + 1 + rounds + raw_weights_wire_size(w)
}

/// Raw-equivalent size of a `ClientMessage::Submit` frame carrying the
/// given weights and metrics map.
pub fn raw_submit_frame_size(w: &Weights, metrics: &BTreeMap<String, f64>) -> u64 {
    let metrics_size = 8 + metrics.keys().map(|k| 8 + k.len() as u64 + 8).sum::<u64>();
    // magic + message tag + round + dxo{kind + weights + metrics + n_examples}
    3 + 1 + 4 + 1 + raw_weights_wire_size(w) + metrics_size + 8
}

// ---------------------------------------------------------------------
// Error feedback
// ---------------------------------------------------------------------

/// Per-tensor residual accumulators: the difference between what a lossy
/// encoder wanted to send and what the receiver will reconstruct. The
/// residual is added back into the next round's values, so quantization
/// and sparsification error is deferred, not lost (error feedback in the
/// sense of 1-bit SGD / deep gradient compression).
#[derive(Debug, Default)]
pub struct ErrorFeedback {
    residuals: BTreeMap<String, Vec<f32>>,
}

impl ErrorFeedback {
    /// Sum of |residual| across all tensors (diagnostics and tests).
    pub fn total_abs(&self) -> f64 {
        self.residuals
            .values()
            .flat_map(|v| v.iter())
            .map(|x| f64::from(x.abs()))
            .sum()
    }
}

// ---------------------------------------------------------------------
// Core encode / decode
// ---------------------------------------------------------------------

fn tensor_bits_equal(a: &WeightTensor, b: &WeightTensor) -> bool {
    a.dims == b.dims
        && a.data.len() == b.data.len()
        && a.data
            .iter()
            .zip(&b.data)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// True when two weight maps are bitwise identical (names, shapes, and
/// every f32 bit pattern).
pub fn weights_bits_equal(a: &Weights, b: &Weights) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|((an, at), (bn, bt))| an == bn && tensor_bits_equal(at, bt))
}

fn checked_numel(dims: &[usize]) -> Result<usize, FlareError> {
    let mut n: usize = 1;
    for &d in dims {
        n = n
            .checked_mul(d)
            .ok_or_else(|| FlareError::Codec("tensor shape overflows usize".into()))?;
    }
    if n > MAX_DECODE_ELEMS {
        return Err(FlareError::Codec(format!(
            "tensor with {n} elements too large"
        )));
    }
    Ok(n)
}

fn int8_quantize(v: &[f32]) -> (f32, Vec<u8>) {
    let maxabs = v.iter().fold(0.0f32, |m, x| m.max(x.abs()));
    let scale = maxabs / 127.0;
    if scale == 0.0 || !scale.is_finite() {
        return (0.0, vec![0u8; v.len()]);
    }
    let bytes = v
        .iter()
        .map(|x| ((x / scale).round().clamp(-127.0, 127.0) as i8) as u8)
        .collect();
    (scale, bytes)
}

fn int8_dequantize(scale: f32, bytes: &[u8]) -> Vec<f32> {
    bytes.iter().map(|&b| f32::from(b as i8) * scale).collect()
}

/// Selects the `k` largest-|v| flat indices (ties toward lower index),
/// returned sorted ascending.
fn topk_indices(v: &[f32], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..v.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        v[b as usize]
            .abs()
            .total_cmp(&v[a as usize].abs())
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Encodes `w` under `spec`, optionally as a delta against `base`
/// (reconstruction + payload id). When `feedback` is provided and the
/// spec is lossy, residuals are added before encoding and updated with
/// the new quantization error afterwards.
///
/// # Errors
///
/// [`FlareError::Codec`] when `base` shapes do not match `w`.
pub fn encode_weights(
    w: &Weights,
    payload_id: u32,
    base: Option<(&Weights, u32)>,
    spec: &CodecSpec,
    mut feedback: Option<&mut ErrorFeedback>,
) -> Result<EncodedWeights, FlareError> {
    let (base_w, base_id) = match (spec.delta, base) {
        (true, Some((bw, bid))) => (Some(bw), bid),
        _ => (None, NO_BASE),
    };
    let lossy = !spec.is_lossless();
    let mut tensors = BTreeMap::new();
    for (name, t) in w {
        let bt = match base_w {
            Some(bw) => {
                let bt = bw.get(name).ok_or_else(|| {
                    FlareError::Codec(format!("delta base missing tensor {name:?}"))
                })?;
                if bt.dims != t.dims {
                    return Err(FlareError::Codec(format!(
                        "delta base shape mismatch for {name:?}"
                    )));
                }
                Some(bt)
            }
            None => None,
        };
        let residual_zero = feedback
            .as_ref()
            .map(|fb| {
                fb.residuals
                    .get(name)
                    .map(|r| r.iter().all(|&x| x == 0.0))
                    .unwrap_or(true)
            })
            .unwrap_or(true);
        // Unchanged tensor and nothing deferred: one byte on the wire.
        if let Some(bt) = bt {
            if residual_zero && tensor_bits_equal(t, bt) {
                tensors.insert(
                    name.clone(),
                    EncodedTensor {
                        dims: t.dims.clone(),
                        body: TensorBody::Same,
                    },
                );
                continue;
            }
        }
        // Lossless delta: XOR of bit patterns, so identical spans RLE to
        // nothing and decode is exact.
        if spec.is_lossless() {
            let body = match bt {
                Some(bt) => {
                    let mut xored = Vec::with_capacity(t.data.len() * 4);
                    for (a, b) in t.data.iter().zip(&bt.data) {
                        xored.extend_from_slice(&(a.to_bits() ^ b.to_bits()).to_le_bytes());
                    }
                    let (rle, bytes) = rle_pack(xored);
                    TensorBody::Xor { rle, bytes }
                }
                None => TensorBody::F32(t.data.clone()),
            };
            tensors.insert(
                name.clone(),
                EncodedTensor {
                    dims: t.dims.clone(),
                    body,
                },
            );
            continue;
        }
        // Numeric path: delta (if based), plus deferred residual.
        let mut v: Vec<f32> = match bt {
            Some(bt) => t.data.iter().zip(&bt.data).map(|(a, b)| a - b).collect(),
            None => t.data.clone(),
        };
        if lossy {
            if let Some(fb) = feedback.as_deref_mut() {
                let r = fb
                    .residuals
                    .entry(name.clone())
                    .or_insert_with(|| vec![0.0; v.len()]);
                if r.len() != v.len() {
                    // Model shape changed under us; drop the stale residual.
                    *r = vec![0.0; v.len()];
                }
                for (x, rr) in v.iter_mut().zip(r.iter()) {
                    *x += rr;
                }
            }
        }
        // recon mirrors what the receiver will reconstruct (relative to
        // the base), so the residual update is exact.
        let (body, recon) = if let Some(pm) = spec.topk_permille {
            let numel = v.len();
            let k = ((numel * usize::from(pm)).div_ceil(1000)).max(1).min(numel);
            let indices = topk_indices(&v, k);
            let picked: Vec<f32> = indices.iter().map(|&i| v[i as usize]).collect();
            let (values, dq): (SparseValues, Vec<f32>) = match spec.quant {
                QuantMode::F32 => (SparseValues::F32(picked.clone()), picked),
                QuantMode::F16 => {
                    let h: Vec<u16> = picked.iter().map(|&x| f32_to_f16(x)).collect();
                    let dq = h.iter().map(|&b| f16_to_f32(b)).collect();
                    (SparseValues::F16(h), dq)
                }
                QuantMode::Int8 => {
                    let (scale, bytes) = int8_quantize(&picked);
                    let dq = int8_dequantize(scale, &bytes);
                    (SparseValues::Int8 { scale, bytes }, dq)
                }
            };
            let mut recon = vec![0.0f32; numel];
            for (&i, &x) in indices.iter().zip(&dq) {
                recon[i as usize] = x;
            }
            (TensorBody::Sparse { indices, values }, recon)
        } else {
            match spec.quant {
                QuantMode::F32 => unreachable!("lossless handled above"),
                QuantMode::F16 => {
                    let h: Vec<u16> = v.iter().map(|&x| f32_to_f16(x)).collect();
                    let recon = h.iter().map(|&b| f16_to_f32(b)).collect();
                    (TensorBody::F16(h), recon)
                }
                QuantMode::Int8 => {
                    let (scale, bytes) = int8_quantize(&v);
                    let recon = int8_dequantize(scale, &bytes);
                    let (rle, bytes) = rle_pack(bytes);
                    (TensorBody::Int8 { scale, rle, bytes }, recon)
                }
            }
        };
        if let Some(fb) = feedback.as_deref_mut() {
            let r = fb
                .residuals
                .entry(name.clone())
                .or_insert_with(|| vec![0.0; v.len()]);
            for ((rr, &want), &got) in r.iter_mut().zip(&v).zip(&recon) {
                *rr = want - got;
            }
        }
        tensors.insert(
            name.clone(),
            EncodedTensor {
                dims: t.dims.clone(),
                body,
            },
        );
    }
    Ok(EncodedWeights {
        tag: spec.tag(),
        payload_id,
        base_id,
        alias: false,
        tensors,
    })
}

/// Builds an alias frame: "payload `id` is bitwise-identical to your
/// reconstruction of `base_id`".
pub fn alias_frame(tag: u8, payload_id: u32, base_id: u32) -> EncodedWeights {
    EncodedWeights {
        tag,
        payload_id,
        base_id,
        alias: true,
        tensors: BTreeMap::new(),
    }
}

/// Decodes an [`EncodedWeights`] frame against an optional base
/// reconstruction (required iff the frame's `base_id` is not
/// [`NO_BASE`]).
///
/// # Errors
///
/// [`FlareError::Codec`] on missing/mismatched bases, malformed bodies,
/// out-of-range sparse indices, or length mismatches.
pub fn decode_weights(enc: &EncodedWeights, base: Option<&Weights>) -> Result<Weights, FlareError> {
    let base = if enc.base_id == NO_BASE {
        None
    } else {
        Some(base.ok_or_else(|| {
            FlareError::Codec(format!("frame needs base payload {}", enc.base_id))
        })?)
    };
    if enc.alias {
        if !enc.tensors.is_empty() {
            return Err(FlareError::Codec("alias frame carries tensors".into()));
        }
        let b = base.ok_or_else(|| FlareError::Codec("alias frame without base".into()))?;
        return Ok(b.clone());
    }
    let mut out = Weights::new();
    for (name, et) in &enc.tensors {
        let numel = checked_numel(&et.dims)?;
        let bt = match base {
            Some(bw) => {
                let bt = bw
                    .get(name)
                    .ok_or_else(|| FlareError::Codec(format!("base missing tensor {name:?}")))?;
                if bt.dims != et.dims {
                    return Err(FlareError::Codec(format!(
                        "base shape mismatch for {name:?}"
                    )));
                }
                Some(bt)
            }
            None => None,
        };
        let data: Vec<f32> = match &et.body {
            TensorBody::Same => {
                let bt = bt
                    .ok_or_else(|| FlareError::Codec("Same body in self-contained frame".into()))?;
                bt.data.clone()
            }
            TensorBody::F32(v) => {
                if v.len() != numel {
                    return Err(FlareError::Codec(format!(
                        "f32 body length {} != numel {numel}",
                        v.len()
                    )));
                }
                match bt {
                    Some(bt) => v.iter().zip(&bt.data).map(|(d, b)| b + d).collect(),
                    None => v.clone(),
                }
            }
            TensorBody::Xor { rle, bytes } => {
                let bt =
                    bt.ok_or_else(|| FlareError::Codec("XOR body in self-contained frame".into()))?;
                let raw = rle_unpack(*rle, bytes, numel * 4)?;
                raw.chunks_exact(4)
                    .zip(&bt.data)
                    .map(|(c, b)| {
                        let d = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                        f32::from_bits(b.to_bits() ^ d)
                    })
                    .collect()
            }
            TensorBody::F16(v) => {
                if v.len() != numel {
                    return Err(FlareError::Codec(format!(
                        "f16 body length {} != numel {numel}",
                        v.len()
                    )));
                }
                match bt {
                    Some(bt) => v
                        .iter()
                        .zip(&bt.data)
                        .map(|(&h, b)| b + f16_to_f32(h))
                        .collect(),
                    None => v.iter().map(|&h| f16_to_f32(h)).collect(),
                }
            }
            TensorBody::Int8 { scale, rle, bytes } => {
                let raw = rle_unpack(*rle, bytes, numel)?;
                let dq = int8_dequantize(*scale, &raw);
                match bt {
                    Some(bt) => dq.iter().zip(&bt.data).map(|(d, b)| b + d).collect(),
                    None => dq,
                }
            }
            TensorBody::Sparse { indices, values } => {
                if values.len() != indices.len() {
                    return Err(FlareError::Codec(
                        "sparse indices/values length mismatch".into(),
                    ));
                }
                let mut prev: Option<u32> = None;
                for &i in indices {
                    if (i as usize) >= numel || prev.is_some_and(|p| i <= p) {
                        return Err(FlareError::Codec(format!(
                            "sparse index {i} invalid for numel {numel}"
                        )));
                    }
                    prev = Some(i);
                }
                let dq: Vec<f32> = match values {
                    SparseValues::F32(v) => v.clone(),
                    SparseValues::F16(v) => v.iter().map(|&h| f16_to_f32(h)).collect(),
                    SparseValues::Int8 { scale, bytes } => int8_dequantize(*scale, bytes),
                };
                let mut data = match bt {
                    Some(bt) => bt.data.clone(),
                    None => vec![0.0f32; numel],
                };
                for (&i, &x) in indices.iter().zip(&dq) {
                    data[i as usize] += x;
                }
                data
            }
        };
        out.insert(name.clone(), WeightTensor::new(et.dims.clone(), data));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Client-side payload cache and uplink encoder
// ---------------------------------------------------------------------

/// Client-side mirror of the server ring: reconstructions of recently
/// decoded downlink payloads, keyed by payload id.
#[derive(Debug)]
pub struct PayloadCache {
    depth: usize,
    entries: VecDeque<(u32, Weights)>,
}

impl Default for PayloadCache {
    fn default() -> Self {
        PayloadCache::new(DEFAULT_RING_DEPTH)
    }
}

impl PayloadCache {
    /// Creates a cache holding the `depth` most recent payloads.
    pub fn new(depth: usize) -> Self {
        PayloadCache {
            depth: depth.max(1),
            entries: VecDeque::new(),
        }
    }

    /// Stores a reconstruction, evicting the oldest beyond the depth.
    pub fn insert(&mut self, id: u32, w: Weights) {
        self.entries.retain(|(i, _)| *i != id);
        self.entries.push_back((id, w));
        while self.entries.len() > self.depth {
            self.entries.pop_front();
        }
    }

    /// Looks up a payload by id.
    pub fn get(&self, id: u32) -> Option<&Weights> {
        self.entries.iter().find(|(i, _)| *i == id).map(|(_, w)| w)
    }

    /// Id of the most recently stored payload (the client's ack).
    pub fn latest_id(&self) -> Option<u32> {
        self.entries.back().map(|(i, _)| *i)
    }
}

/// Client-side uplink encoder: owns the negotiated spec and the
/// error-feedback accumulators for this client's submissions.
#[derive(Debug)]
pub struct UplinkEncoder {
    /// Negotiated codec for this client's uplink.
    pub spec: CodecSpec,
    feedback: ErrorFeedback,
}

impl UplinkEncoder {
    /// Creates an encoder with zeroed residuals.
    pub fn new(spec: CodecSpec) -> Self {
        UplinkEncoder {
            spec,
            feedback: ErrorFeedback::default(),
        }
    }

    /// Encodes one update, deltaing against `base` when the spec asks
    /// for it and carrying quantization residue across calls.
    ///
    /// # Errors
    ///
    /// [`FlareError::Codec`] on base shape mismatches.
    pub fn encode(
        &mut self,
        w: &Weights,
        base: Option<(&Weights, u32)>,
    ) -> Result<EncodedWeights, FlareError> {
        encode_weights(w, 0, base, &self.spec, Some(&mut self.feedback))
    }

    /// Total |residual| currently deferred (diagnostics).
    pub fn deferred_error(&self) -> f64 {
        self.feedback.total_abs()
    }
}

// ---------------------------------------------------------------------
// Server-side global ring with canonical per-spec reconstruction chains
// ---------------------------------------------------------------------

/// What kind of downlink frame [`GlobalRing::encode_for`] produced —
/// drives the `flare.wire.codec.*` counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DownlinkKind {
    /// Self-contained frame (chain head or fallback for lost bases).
    Full,
    /// Canonical delta against the client's acknowledged payload.
    Delta,
    /// Payload is bitwise-identical to the acknowledged payload.
    Alias,
    /// Lossless catch-up delta for a straggler off the canonical chain.
    CatchUp,
}

struct ChainEntry {
    id: u32,
    /// Alias-equivalence class: the id of the earliest payload in the
    /// ring whose reconstruction this one shares.
    class: u32,
    recon: Weights,
    /// Canonical frame: encoded against the previous chain entry (or a
    /// self-contained full frame at the chain head).
    canon: EncodedWeights,
}

struct Chain {
    spec: CodecSpec,
    entries: VecDeque<ChainEntry>,
}

impl Chain {
    fn get(&self, id: u32) -> Option<&ChainEntry> {
        self.entries.iter().find(|e| e.id == id)
    }
}

/// Server-side ring of recent global payloads plus, per negotiated
/// codec, the canonical chain of quantized reconstructions every
/// compliant client converges to. Downlink deltas are computed against
/// *reconstructions* (not raw globals), so quantization error does not
/// accumulate across rounds, and every client that follows the
/// canonical/alias/catch-up frames lands on exactly the same bits.
pub struct GlobalRing {
    depth: usize,
    next_id: u32,
    raw: VecDeque<(u32, Weights)>,
    chains: BTreeMap<String, Chain>,
}

impl Default for GlobalRing {
    fn default() -> Self {
        GlobalRing::new(DEFAULT_RING_DEPTH)
    }
}

impl std::fmt::Debug for GlobalRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalRing")
            .field("depth", &self.depth)
            .field("next_id", &self.next_id)
            .field("payloads", &self.raw.len())
            .field("chains", &self.chains.len())
            .finish()
    }
}

impl GlobalRing {
    /// Creates a ring retaining the `depth` most recent payloads.
    pub fn new(depth: usize) -> Self {
        GlobalRing {
            depth: depth.max(1),
            next_id: 1,
            raw: VecDeque::new(),
            chains: BTreeMap::new(),
        }
    }

    /// Registers a new global payload, assigns it an id, and extends
    /// every active codec chain. Payload ids are session-scoped: a
    /// resumed run starts a fresh ring, which forces one self-contained
    /// frame per client after resume (see DESIGN.md §3g).
    pub fn publish(&mut self, w: &Weights) -> u32 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let alias_prev = self
            .raw
            .back()
            .map(|(_, pw)| weights_bits_equal(pw, w))
            .unwrap_or(false);
        self.raw.push_back((id, w.clone()));
        while self.raw.len() > self.depth {
            self.raw.pop_front();
        }
        let depth = self.depth;
        for chain in self.chains.values_mut() {
            Self::extend_chain(chain, id, w, alias_prev, depth);
        }
        id
    }

    fn extend_chain(chain: &mut Chain, id: u32, w: &Weights, alias_prev: bool, depth: usize) {
        let tag = chain.spec.tag();
        let entry = match chain.entries.back() {
            Some(prev) if alias_prev => ChainEntry {
                id,
                class: prev.class,
                recon: prev.recon.clone(),
                canon: alias_frame(tag, id, prev.id),
            },
            Some(prev) => {
                match encode_weights(w, id, Some((&prev.recon, prev.id)), &chain.spec, None)
                    .and_then(|canon| {
                        decode_weights(&canon, Some(&prev.recon)).map(|recon| (canon, recon))
                    }) {
                    Ok((canon, recon)) => ChainEntry {
                        id,
                        class: id,
                        recon,
                        canon,
                    },
                    // Shape change mid-chain (should not happen in a SAG
                    // run): restart the chain with a full frame.
                    Err(_) => Self::head_entry(&chain.spec, id, w),
                }
            }
            None => Self::head_entry(&chain.spec, id, w),
        };
        chain.entries.push_back(entry);
        while chain.entries.len() > depth {
            chain.entries.pop_front();
        }
    }

    fn head_entry(spec: &CodecSpec, id: u32, w: &Weights) -> ChainEntry {
        // A self-contained frame never errors (no base to mismatch).
        let canon = encode_weights(w, id, None, spec, None).expect("full frame");
        let recon = decode_weights(&canon, None).expect("own frame decodes");
        ChainEntry {
            id,
            class: id,
            recon,
            canon,
        }
    }

    /// Ensures a chain exists for `spec` and covers payload `id`
    /// (chains are created lazily at first use after negotiation).
    fn chain_through(&mut self, spec: &CodecSpec, id: u32) -> Option<&mut Chain> {
        let key = spec.to_string();
        let raw = &self.raw;
        let chain = self.chains.entry(key).or_insert_with(|| Chain {
            spec: spec.clone(),
            entries: VecDeque::new(),
        });
        if chain.get(id).is_none() {
            // Spec negotiated after this payload was published: start (or
            // restart) the chain at `id`.
            let w = raw.iter().find(|(i, _)| *i == id).map(|(_, w)| w)?;
            chain.entries.clear();
            chain.entries.push_back(Self::head_entry(spec, id, w));
        }
        Some(chain)
    }

    /// Plans the downlink for payload `id` under `spec` given the acks of
    /// every client about to receive it: when any ack cannot take the
    /// cheap alias/canonical-delta path (fresh client, evicted or
    /// off-chain ack), the chain entry for `id` is rebuilt as a
    /// self-contained head frame, which is valid for *every* receiver and
    /// far smaller than the exact-f32 full / lossless catch-up frames
    /// those clients would otherwise need. Earlier entries are kept so
    /// in-flight uplink deltas against older reconstructions still
    /// resolve. No-op when everyone is on the cheap path or `id` already
    /// heads the chain.
    pub fn prepare_round(&mut self, spec: &CodecSpec, acks: &[Option<u32>], id: u32) {
        if self.chain_through(spec, id).is_none() {
            return;
        }
        let raw = &self.raw;
        let Some(chain) = self.chains.get_mut(&spec.to_string()) else {
            return;
        };
        let Some(entry) = chain.get(id) else { return };
        if entry.canon.base_id == NO_BASE && !entry.canon.alias {
            return; // already self-contained
        }
        let target_class = entry.class;
        let canon_base_class = chain.get(entry.canon.base_id).map(|e| e.class);
        let all_cheap = acks.iter().all(|a| {
            matches!(a.and_then(|a| chain.get(a)),
                Some(e) if e.class == target_class || Some(e.class) == canon_base_class)
        });
        if all_cheap {
            return;
        }
        let Some((_, w)) = raw.iter().find(|(i, _)| *i == id) else {
            return;
        };
        let head = Self::head_entry(&chain.spec, id, w);
        if let Some(back) = chain.entries.back_mut() {
            if back.id == id {
                *back = head;
                return;
            }
        }
        chain.entries.push_back(head);
    }

    /// Encodes payload `id` for a client that has acknowledged `acked`
    /// (or nothing), returning the frame plus its kind for counters.
    /// Returns `None` when `id` has been evicted from the ring.
    pub fn encode_for(
        &mut self,
        spec: &CodecSpec,
        acked: Option<u32>,
        id: u32,
    ) -> Option<(EncodedWeights, DownlinkKind)> {
        let lossless = CodecSpec {
            delta: true,
            quant: QuantMode::F32,
            topk_permille: None,
        };
        let chain = self.chain_through(spec, id)?;
        let tag = chain.spec.tag();
        let target_class = chain.get(id)?.class;
        if let Some(a) = acked {
            if let Some(a_entry) = chain.get(a) {
                if a_entry.class == target_class {
                    return Some((alias_frame(tag, id, a), DownlinkKind::Alias));
                }
                // A self-contained head frame serves any receiver.
                let entry = chain.get(id)?;
                if entry.canon.base_id == NO_BASE && !entry.canon.alias {
                    return Some((entry.canon.clone(), DownlinkKind::Full));
                }
                // Canonical delta applies when the client sits exactly on
                // the canonical predecessor's reconstruction.
                let entry = chain.get(id)?;
                let canon_base = entry.canon.base_id;
                let canon_base_class = chain.get(canon_base).map(|e| e.class);
                if Some(a_entry.class) == canon_base_class {
                    let mut frame = entry.canon.clone();
                    frame.base_id = a;
                    return Some((frame, DownlinkKind::Delta));
                }
                // Straggler off the canonical path: exact lossless
                // catch-up from its reconstruction to the canonical one.
                let entry_recon = entry.recon.clone();
                let frame =
                    encode_weights(&entry_recon, id, Some((&a_entry.recon, a)), &lossless, None)
                        .ok()?;
                return Some((frame, DownlinkKind::CatchUp));
            }
        }
        // No usable base: self-contained frame. The chain head's full
        // frame is canonical as-is; otherwise ship the canonical
        // reconstruction as exact f32 so the client joins the chain.
        let entry = chain.get(id)?;
        if entry.canon.base_id == NO_BASE && !entry.canon.alias {
            return Some((entry.canon.clone(), DownlinkKind::Full));
        }
        let full = CodecSpec::raw();
        let frame = encode_weights(&entry.recon, id, None, &full, None).ok()?;
        Some((frame, DownlinkKind::Full))
    }

    /// The canonical reconstruction of payload `id` under `spec` — the
    /// bits a compliant client holds after decoding it. Used by the
    /// server to resolve uplink delta bases.
    pub fn recon(&self, spec: &CodecSpec, id: u32) -> Option<&Weights> {
        self.chains
            .get(&spec.to_string())
            .and_then(|c| c.get(id))
            .map(|e| &e.recon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w(pairs: &[(&str, Vec<f32>)]) -> Weights {
        let mut m = Weights::new();
        for (name, data) in pairs {
            m.insert(
                (*name).into(),
                WeightTensor::new(vec![data.len()], data.clone()),
            );
        }
        m
    }

    fn spec(s: &str) -> CodecSpec {
        CodecSpec::parse(s).unwrap()
    }

    // -- spec parsing ---------------------------------------------------

    #[test]
    fn spec_parse_and_display_roundtrip() {
        for s in [
            "raw",
            "delta",
            "f16",
            "int8",
            "delta+int8",
            "delta+f16",
            "delta+topk0.05+int8",
            "topk0.125+f16",
            "delta+topk0.5",
        ] {
            let sp = spec(s);
            assert_eq!(sp.to_string(), s, "canonical display of {s}");
            assert_eq!(CodecSpec::parse(&sp.to_string()).unwrap(), sp);
        }
    }

    #[test]
    fn spec_parse_accepts_aliases_and_case() {
        assert!(spec("RAW").is_raw());
        assert!(spec("f32").is_raw());
        assert_eq!(spec("Delta+Int8"), spec("delta+int8"));
    }

    #[test]
    fn spec_parse_rejects_garbage() {
        for s in [
            "",
            "zstd",
            "delta+delta",
            "int8+f16",
            "topk0",
            "topk1.5",
            "topknan",
        ] {
            assert!(CodecSpec::parse(s).is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn spec_tags_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for s in [
            "raw",
            "delta",
            "f16",
            "int8",
            "delta+f16",
            "delta+int8",
            "delta+topk0.1+int8",
        ] {
            assert!(seen.insert(spec(s).tag()), "tag collision for {s}");
        }
    }

    // -- f16 ------------------------------------------------------------

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16(0.0), 0x0000);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f32_to_f16(1.0), 0x3c00);
        assert_eq!(f32_to_f16(-2.0), 0xc000);
        assert_eq!(f32_to_f16(65504.0), 0x7bff); // max finite half
        assert_eq!(f32_to_f16(1e6), 0x7c00); // overflow → inf
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0x7c00), f32::INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Smallest subnormal: 2^-24.
        assert_eq!(f16_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f32_to_f16(2.0f32.powi(-24)), 0x0001);
    }

    #[test]
    fn f16_roundtrip_exact_for_representable() {
        for x in [0.5f32, 0.25, 1.5, 3.0, -100.0, 0.099975586] {
            assert_eq!(f16_to_f32(f32_to_f16(x)), x, "{x} is f16-representable");
        }
    }

    proptest! {
        #[test]
        fn f16_error_bounded(x in -1000.0f32..1000.0) {
            let back = f16_to_f32(f32_to_f16(x));
            // Half precision has a 10-bit mantissa: relative error ≤ 2^-11.
            let tol = (x.abs() * 2.0f32.powi(-11)).max(2.0f32.powi(-14));
            prop_assert!((back - x).abs() <= tol, "{x} -> {back}");
        }

        #[test]
        fn f16_double_conversion_is_stable(h in any::<u16>()) {
            // f16 -> f32 -> f16 must be the identity (modulo NaN payloads).
            let x = f16_to_f32(h);
            if x.is_nan() {
                prop_assert!(f16_to_f32(f32_to_f16(x)).is_nan());
            } else {
                prop_assert_eq!(f32_to_f16(x), h);
            }
        }
    }

    // -- RLE ------------------------------------------------------------

    #[test]
    fn rle_roundtrips() {
        for bytes in [
            vec![],
            vec![0u8; 100],
            vec![1u8; 100],
            vec![0, 0, 0, 5, 6, 0, 0, 7],
            (0..=255u8).collect::<Vec<_>>(),
        ] {
            let packed = rle_compress(&bytes);
            assert_eq!(rle_decompress(&packed, bytes.len()).unwrap(), bytes);
        }
    }

    #[test]
    fn rle_long_runs_split_correctly() {
        let mut bytes = vec![0u8; 200_000];
        bytes.extend_from_slice(&[9u8; 70_000]);
        let packed = rle_compress(&bytes);
        assert!(packed.len() < bytes.len() / 2);
        assert_eq!(rle_decompress(&packed, bytes.len()).unwrap(), bytes);
    }

    #[test]
    fn rle_rejects_hostile_input() {
        // Claims more output than expected_len.
        let mut packed = Vec::new();
        packed.extend_from_slice(&100u16.to_le_bytes());
        packed.extend_from_slice(&0u16.to_le_bytes());
        assert!(rle_decompress(&packed, 10).is_err());
        // Truncated record header.
        assert!(rle_decompress(&[1, 0, 1], 10).is_err());
        // Literal length overruns the input.
        let mut packed = Vec::new();
        packed.extend_from_slice(&0u16.to_le_bytes());
        packed.extend_from_slice(&50u16.to_le_bytes());
        packed.push(7);
        assert!(rle_decompress(&packed, 50).is_err());
        // Output shorter than expected.
        assert!(rle_decompress(&[], 1).is_err());
    }

    proptest! {
        #[test]
        fn rle_roundtrip_arbitrary(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let (rle, packed) = rle_pack(bytes.clone());
            prop_assert_eq!(rle_unpack(rle, &packed, bytes.len()).unwrap(), bytes);
        }
    }

    // -- frame wire roundtrips & CRC ------------------------------------

    fn sample_frame() -> EncodedWeights {
        let mut tensors = BTreeMap::new();
        tensors.insert(
            "a".into(),
            EncodedTensor {
                dims: vec![2, 2],
                body: TensorBody::F32(vec![1.0, 2.0, 3.0, 4.0]),
            },
        );
        tensors.insert(
            "b".into(),
            EncodedTensor {
                dims: vec![3],
                body: TensorBody::Int8 {
                    scale: 0.5,
                    rle: false,
                    bytes: vec![1, 255, 0],
                },
            },
        );
        tensors.insert(
            "c".into(),
            EncodedTensor {
                dims: vec![4],
                body: TensorBody::Sparse {
                    indices: vec![0, 3],
                    values: SparseValues::F16(vec![0x3c00, 0xc000]),
                },
            },
        );
        EncodedWeights {
            tag: spec("delta+int8").tag(),
            payload_id: 7,
            base_id: 5,
            alias: false,
            tensors,
        }
    }

    #[test]
    fn encoded_weights_wire_roundtrip() {
        let frame = sample_frame();
        let bytes = frame.to_frame();
        assert_eq!(EncodedWeights::from_frame(&bytes).unwrap(), frame);
    }

    #[test]
    fn crc_rejects_any_single_bitflip() {
        let bytes = sample_frame().to_frame();
        // Flip a byte in the middle of the body and in the CRC itself.
        for idx in [4, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[idx] ^= 0x40;
            assert!(
                EncodedWeights::from_frame(&bad).is_err(),
                "bit-flip at {idx} must be rejected"
            );
        }
    }

    #[test]
    fn crc_rejects_truncation() {
        let bytes = sample_frame().to_frame();
        assert!(EncodedWeights::from_frame(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn unknown_body_tags_rejected() {
        let mut frame = crate::wire::FRAME_MAGIC.to_vec();
        99u8.encode(&mut frame);
        assert!(TensorBody::from_frame(&frame).is_err());
        let mut frame = crate::wire::FRAME_MAGIC.to_vec();
        9u8.encode(&mut frame);
        assert!(SparseValues::from_frame(&frame).is_err());
    }

    // -- encode/decode semantics ---------------------------------------

    #[test]
    fn lossless_delta_is_bit_exact() {
        let base = w(&[("a", vec![1.0, -2.5, 3.25]), ("b", vec![0.0; 64])]);
        let mut cur = base.clone();
        cur.get_mut("a").unwrap().data[1] = 7.125;
        let enc = encode_weights(&cur, 2, Some((&base, 1)), &spec("delta"), None).unwrap();
        assert_eq!(enc.base_id, 1);
        // Unchanged tensor collapses to Same.
        assert_eq!(enc.tensors["b"].body, TensorBody::Same);
        let back = decode_weights(&enc, Some(&base)).unwrap();
        assert!(weights_bits_equal(&back, &cur));
    }

    #[test]
    fn lossless_delta_exact_even_for_extreme_magnitudes() {
        // Arithmetic deltas would destroy 1e-8 against 1e8; XOR must not.
        let base = w(&[("a", vec![1e8, 1.0])]);
        let cur = w(&[("a", vec![1e-8, f32::MIN_POSITIVE])]);
        let enc = encode_weights(&cur, 2, Some((&base, 1)), &spec("delta"), None).unwrap();
        let back = decode_weights(&enc, Some(&base)).unwrap();
        assert!(weights_bits_equal(&back, &cur));
    }

    #[test]
    fn full_f32_frame_is_bit_exact() {
        let cur = w(&[("a", vec![0.1, -0.2, 1e-30])]);
        let enc = encode_weights(&cur, 1, None, &spec("delta"), None).unwrap();
        assert_eq!(enc.base_id, NO_BASE);
        let back = decode_weights(&enc, None).unwrap();
        assert!(weights_bits_equal(&back, &cur));
    }

    #[test]
    fn int8_error_bounded_by_half_step() {
        let vals: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) * 0.013).collect();
        let cur = w(&[("a", vals.clone())]);
        let enc = encode_weights(&cur, 1, None, &spec("int8"), None).unwrap();
        let back = decode_weights(&enc, None).unwrap();
        let maxabs = vals.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let step = maxabs / 127.0;
        for (a, b) in back["a"].data.iter().zip(&vals) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn f16_delta_decodes_within_tolerance() {
        let base = w(&[("a", vec![1.0, 2.0, 3.0])]);
        let cur = w(&[("a", vec![1.5, 2.25, 2.875])]);
        let enc = encode_weights(&cur, 2, Some((&base, 1)), &spec("delta+f16"), None).unwrap();
        let back = decode_weights(&enc, Some(&base)).unwrap();
        for (a, b) in back["a"].data.iter().zip(&cur["a"].data) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn topk_keeps_largest_magnitudes() {
        let cur = w(&[("a", vec![0.1, -9.0, 0.2, 8.0, 0.0, -0.3])]);
        let enc = encode_weights(&cur, 1, None, &spec("topk0.33"), None).unwrap();
        match &enc.tensors["a"].body {
            TensorBody::Sparse { indices, values } => {
                assert_eq!(indices, &vec![1, 3]);
                assert_eq!(values, &SparseValues::F32(vec![-9.0, 8.0]));
            }
            other => panic!("expected sparse body, got {other:?}"),
        }
        let back = decode_weights(&enc, None).unwrap();
        assert_eq!(back["a"].data, vec![0.0, -9.0, 0.0, 8.0, 0.0, 0.0]);
    }

    #[test]
    fn topk_tie_breaks_toward_lower_index() {
        let cur = w(&[("a", vec![1.0, -1.0, 1.0, 1.0])]);
        let enc = encode_weights(&cur, 1, None, &spec("topk0.5"), None).unwrap();
        match &enc.tensors["a"].body {
            TensorBody::Sparse { indices, .. } => assert_eq!(indices, &vec![0, 1]),
            other => panic!("expected sparse body, got {other:?}"),
        }
    }

    #[test]
    fn error_feedback_carries_residue() {
        // Coordinate 0 is always below the int8 step of coordinate 1's
        // magnitude; without feedback it would never be transmitted.
        let mut fb = ErrorFeedback::default();
        let sp = spec("int8");
        let mut recon_sum = [0.0f64; 2];
        let v = vec![0.004f32, 127.0];
        for _ in 0..100 {
            let cur = w(&[("a", v.clone())]);
            let enc = encode_weights(&cur, 1, None, &sp, Some(&mut fb)).unwrap();
            let back = decode_weights(&enc, None).unwrap();
            for (s, x) in recon_sum.iter_mut().zip(&back["a"].data) {
                *s += f64::from(*x);
            }
        }
        // Σ of reconstructions tracks Σ of true values to within one step.
        for (s, x) in recon_sum.iter().zip(&v) {
            let want = f64::from(*x) * 100.0;
            assert!(
                (s - want).abs() <= f64::from(v[1]) / 127.0 + 1e-3,
                "sum {s} should track {want}"
            );
        }
    }

    #[test]
    fn error_feedback_zero_for_lossless() {
        let mut fb = ErrorFeedback::default();
        let cur = w(&[("a", vec![0.123, -4.56])]);
        let base = w(&[("a", vec![0.0, 0.0])]);
        encode_weights(&cur, 2, Some((&base, 1)), &spec("delta"), Some(&mut fb)).unwrap();
        assert_eq!(fb.total_abs(), 0.0);
    }

    #[test]
    fn quantized_fedavg_tracks_raw_fedavg_over_rounds() {
        // Error-feedback convergence: N rounds of lossy uplink, summed
        // like FedAvg would, stay within one quantization step of the
        // raw sum per coordinate.
        let sp = spec("delta+topk0.5+int8");
        let mut enc_state = UplinkEncoder::new(sp);
        let n = 64usize;
        let mut raw_sum = vec![0.0f64; n];
        let mut dec_sum = vec![0.0f64; n];
        let mut rng = 0x12345u64;
        let mut next = move || {
            // xorshift: deterministic pseudo-random updates
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng as f64 / u64::MAX as f64) as f32 - 0.5
        };
        let base = w(&[("a", vec![0.0; n])]);
        for _ in 0..50 {
            let vals: Vec<f32> = (0..n).map(|_| next() * 0.01).collect();
            let cur = w(&[(
                "a",
                base["a"]
                    .data
                    .iter()
                    .zip(&vals)
                    .map(|(b, v)| b + v)
                    .collect(),
            )]);
            let enc = enc_state.encode(&cur, Some((&base, 1))).unwrap();
            let dec = decode_weights(&enc, Some(&base)).unwrap();
            for i in 0..n {
                raw_sum[i] += f64::from(cur["a"].data[i]);
                dec_sum[i] += f64::from(dec["a"].data[i]);
            }
        }
        for i in 0..n {
            assert!(
                (raw_sum[i] - dec_sum[i]).abs() < 0.02,
                "coordinate {i}: raw {} vs decoded {}",
                raw_sum[i],
                dec_sum[i]
            );
        }
    }

    #[test]
    fn decode_rejects_hostile_frames() {
        let base = w(&[("a", vec![1.0, 2.0])]);
        // Missing base.
        let enc = encode_weights(&base, 2, Some((&base, 1)), &spec("delta"), None).unwrap();
        assert!(decode_weights(&enc, None).is_err());
        // Sparse index out of range.
        let mut tensors = BTreeMap::new();
        tensors.insert(
            "a".into(),
            EncodedTensor {
                dims: vec![2],
                body: TensorBody::Sparse {
                    indices: vec![5],
                    values: SparseValues::F32(vec![1.0]),
                },
            },
        );
        let bad = EncodedWeights {
            tag: 0,
            payload_id: 1,
            base_id: NO_BASE,
            alias: false,
            tensors: tensors.clone(),
        };
        assert!(decode_weights(&bad, None).is_err());
        // Non-increasing sparse indices.
        tensors.get_mut("a").unwrap().body = TensorBody::Sparse {
            indices: vec![1, 1],
            values: SparseValues::F32(vec![1.0, 2.0]),
        };
        let bad = EncodedWeights {
            tag: 0,
            payload_id: 1,
            base_id: NO_BASE,
            alias: false,
            tensors: tensors.clone(),
        };
        assert!(decode_weights(&bad, None).is_err());
        // Dense body length mismatch.
        tensors.get_mut("a").unwrap().body = TensorBody::F32(vec![1.0; 3]);
        let bad = EncodedWeights {
            tag: 0,
            payload_id: 1,
            base_id: NO_BASE,
            alias: false,
            tensors,
        };
        assert!(decode_weights(&bad, None).is_err());
        // Alias frame with tensors.
        let mut bad = encode_weights(&base, 1, None, &CodecSpec::raw(), None).unwrap();
        bad.alias = true;
        bad.base_id = 1;
        assert!(decode_weights(&bad, Some(&base)).is_err());
    }

    #[test]
    fn raw_sizes_match_actual_encoding() {
        let cur = w(&[("layer.weight", vec![0.5; 37]), ("bias", vec![1.0; 3])]);
        let mut buf = Vec::new();
        cur.encode(&mut buf);
        assert_eq!(raw_weights_wire_size(&cur), buf.len() as u64);
    }

    // -- ring behaviour -------------------------------------------------

    #[test]
    fn ring_canonical_chain_and_alias() {
        let sp = spec("delta+int8");
        let mut ring = GlobalRing::new(4);
        let g1 = w(&[("a", vec![1.0; 8])]);
        let g2 = w(&[("a", vec![1.5; 8])]);
        let id1 = ring.publish(&g1);

        // First contact: full frame, client then acks id1.
        let (f1, k1) = ring.encode_for(&sp, None, id1).unwrap();
        assert_eq!(k1, DownlinkKind::Full);
        let c1 = decode_weights(&f1, None).unwrap();
        assert!(weights_bits_equal(&c1, ring.recon(&sp, id1).unwrap()));

        // Republish identical weights (Validate r → Train r+1): alias.
        let id2 = ring.publish(&g1);
        let (f2, k2) = ring.encode_for(&sp, Some(id1), id2).unwrap();
        assert_eq!(k2, DownlinkKind::Alias);
        let c2 = decode_weights(&f2, Some(&c1)).unwrap();
        assert!(weights_bits_equal(&c2, &c1));

        // New global: canonical delta against the acked alias id.
        let id3 = ring.publish(&g2);
        let (f3, k3) = ring.encode_for(&sp, Some(id2), id3).unwrap();
        assert_eq!(k3, DownlinkKind::Delta);
        assert_eq!(f3.base_id, id2);
        let c3 = decode_weights(&f3, Some(&c2)).unwrap();
        assert!(weights_bits_equal(&c3, ring.recon(&sp, id3).unwrap()));
    }

    #[test]
    fn ring_straggler_catches_up_exactly() {
        let sp = spec("delta+int8");
        let mut ring = GlobalRing::new(8);
        let id1 = ring.publish(&w(&[("a", vec![1.0; 8])]));
        let (f1, _) = ring.encode_for(&sp, None, id1).unwrap();
        let c1 = decode_weights(&f1, None).unwrap();

        // The straggler missed payloads 2 and 3 entirely.
        ring.publish(&w(&[("a", vec![2.0; 8])]));
        let id3 = ring.publish(&w(&[("a", vec![3.0; 8])]));
        let (f3, k3) = ring.encode_for(&sp, Some(id1), id3).unwrap();
        assert_eq!(k3, DownlinkKind::CatchUp);
        let c3 = decode_weights(&f3, Some(&c1)).unwrap();
        // Catch-up lands bit-exactly on the canonical reconstruction.
        assert!(weights_bits_equal(&c3, ring.recon(&sp, id3).unwrap()));
    }

    #[test]
    fn ring_evicted_ack_falls_back_to_full() {
        let sp = spec("delta+int8");
        let mut ring = GlobalRing::new(2);
        let id1 = ring.publish(&w(&[("a", vec![1.0; 4])]));
        ring.encode_for(&sp, None, id1).unwrap();
        ring.publish(&w(&[("a", vec![2.0; 4])]));
        ring.publish(&w(&[("a", vec![3.0; 4])]));
        let id4 = ring.publish(&w(&[("a", vec![4.0; 4])]));
        let (f4, k4) = ring.encode_for(&sp, Some(id1), id4).unwrap();
        assert_eq!(k4, DownlinkKind::Full);
        let c4 = decode_weights(&f4, None).unwrap();
        assert!(weights_bits_equal(&c4, ring.recon(&sp, id4).unwrap()));
    }

    #[test]
    fn ring_lossless_chain_matches_raw_globals_exactly() {
        let sp = spec("delta");
        let mut ring = GlobalRing::new(4);
        let g1 = w(&[("a", vec![0.123, -4.5, 6.7])]);
        let g2 = w(&[("a", vec![0.124, -4.5, 6.9])]);
        let id1 = ring.publish(&g1);
        let id2 = ring.publish(&g2);
        assert!(weights_bits_equal(ring.recon_init(&sp, id1), &g1));
        assert!(weights_bits_equal(ring.recon_init(&sp, id2), &g2));
    }

    #[test]
    fn prepare_round_downgrades_to_head_for_mixed_acks() {
        let sp = spec("delta+int8");
        let mut ring = GlobalRing::new(8);
        let id1 = ring.publish(&w(&[("a", vec![1.0; 8])]));
        ring.encode_for(&sp, None, id1).unwrap();
        let id2 = ring.publish(&w(&[("a", vec![2.0; 8])]));

        // Everyone on the cheap path: the canonical delta entry survives.
        ring.prepare_round(&sp, &[Some(id1), Some(id1)], id2);
        let (_, k) = ring.encode_for(&sp, Some(id1), id2).unwrap();
        assert_eq!(k, DownlinkKind::Delta);

        // One fresh client in the round: entry becomes a self-contained
        // head, which every receiver (acked or not) now gets as Full.
        let id3 = ring.publish(&w(&[("a", vec![3.0; 8])]));
        ring.prepare_round(&sp, &[Some(id2), None], id3);
        let (f_new, k_new) = ring.encode_for(&sp, None, id3).unwrap();
        assert_eq!(k_new, DownlinkKind::Full);
        assert_eq!(f_new.base_id, NO_BASE);
        let (f_old, k_old) = ring.encode_for(&sp, Some(id2), id3).unwrap();
        assert_eq!(k_old, DownlinkKind::Full);
        let c_new = decode_weights(&f_new, None).unwrap();
        let c_old = decode_weights(&f_old, None).unwrap();
        assert!(weights_bits_equal(&c_new, &c_old));
        assert!(weights_bits_equal(&c_new, ring.recon(&sp, id3).unwrap()));

        // Earlier entries survive the downgrade, so an uplink delta based
        // on an older reconstruction still resolves.
        assert!(ring.recon(&sp, id2).is_some());
    }

    #[test]
    fn payload_cache_evicts_oldest() {
        let mut cache = PayloadCache::new(2);
        cache.insert(1, w(&[("a", vec![1.0])]));
        cache.insert(2, w(&[("a", vec![2.0])]));
        cache.insert(3, w(&[("a", vec![3.0])]));
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
        assert_eq!(cache.latest_id(), Some(3));
    }

    impl GlobalRing {
        /// Test helper: recon that forces the chain to exist.
        fn recon_init(&mut self, spec: &CodecSpec, id: u32) -> &Weights {
            self.chain_through(spec, id).unwrap();
            self.recon(spec, id).unwrap()
        }
    }

    // -- composition proptests -----------------------------------------

    fn arb_weights() -> impl Strategy<Value = Weights> {
        proptest::collection::btree_map(
            "[a-z]{1,6}",
            proptest::collection::vec(-100.0f32..100.0, 1..64),
            1..4,
        )
        .prop_map(|m| {
            m.into_iter()
                .map(|(k, v)| {
                    let t = WeightTensor::new(vec![v.len()], v);
                    (k, t)
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn wire_roundtrip_all_codecs(base in arb_weights(), seed in any::<u64>()) {
            // Perturb the base to get a "current" payload with the same shapes.
            let mut cur = base.clone();
            let mut s = seed | 1;
            for t in cur.values_mut() {
                for x in t.data.iter_mut() {
                    s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                    if s & 3 == 0 { *x += (s % 1000) as f32 / 997.0; }
                }
            }
            for codec in ["delta", "delta+f16", "delta+int8", "delta+topk0.25+int8",
                          "delta+topk0.5+f16", "f16", "int8", "topk0.5"] {
                let sp = spec(codec);
                let enc = encode_weights(&cur, 2, Some((&base, 1)), &sp, None).unwrap();
                // Wire roundtrip is always bit-exact on the *encoded* form.
                let frame = enc.to_frame();
                let enc2 = EncodedWeights::from_frame(&frame).unwrap();
                prop_assert_eq!(&enc2, &enc, "wire roundtrip for {}", codec);
                // Decode must succeed and preserve shapes.
                let need_base = enc.base_id != NO_BASE;
                let dec = decode_weights(&enc, need_base.then_some(&base)).unwrap();
                prop_assert_eq!(dec.len(), cur.len());
                for (name, t) in &dec {
                    prop_assert_eq!(&t.dims, &cur[name].dims);
                }
                // Lossless specs are bit-exact end to end.
                if sp.is_lossless() {
                    prop_assert!(weights_bits_equal(&dec, &cur), "{} lossless", codec);
                }
            }
        }
    }
}
