//! Data-exchange objects: the payloads moving between server and clients.
//!
//! NVFlare calls its typed payload a *DXO* ("data exchange object") and Fig. 3
//! of the paper shows its `DXOAggregator` at work; this module is the
//! equivalent.

use std::collections::BTreeMap;

/// A dense named weight tensor as it travels on the wire (framework-
/// agnostic: no autograd attached).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WeightTensor {
    /// Dimension extents, row-major.
    pub dims: Vec<usize>,
    /// Flat data.
    pub data: Vec<f32>,
}

impl WeightTensor {
    /// Creates a tensor, validating the element count.
    ///
    /// # Panics
    ///
    /// Panics if `dims` does not multiply out to `data.len()`.
    pub fn new(dims: Vec<usize>, data: Vec<f32>) -> Self {
        let expect: usize = dims.iter().product();
        assert_eq!(expect, data.len(), "weight tensor shape/data mismatch");
        WeightTensor { dims, data }
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Decomposes into `(dims, data)`, handing the buffers to the caller
    /// without copying (e.g. to rebuild an autograd tensor from a received
    /// payload).
    pub fn into_parts(self) -> (Vec<usize>, Vec<f32>) {
        (self.dims, self.data)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// A full named model: the unit of federated weight exchange.
pub type Weights = BTreeMap<String, WeightTensor>;

/// What a [`Dxo`] payload carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DxoKind {
    /// Full model weights.
    Weights,
    /// Weight *differences* against the broadcast global model (used with
    /// differential-privacy filters).
    WeightDiff,
    /// Metric values only.
    Metrics,
}

/// NVFlare-style data exchange object: typed payload plus metadata.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Dxo {
    /// Payload type.
    pub kind: DxoKind,
    /// Model weights (empty for pure-metric DXOs).
    pub weights: Weights,
    /// Scalar metrics (e.g. `train_loss`, `valid_acc`).
    pub metrics: BTreeMap<String, f64>,
    /// Number of local examples backing this update (aggregation weight).
    pub n_examples: u64,
}

impl Dxo {
    /// A weights DXO with no metrics.
    pub fn from_weights(weights: Weights, n_examples: u64) -> Self {
        Dxo {
            kind: DxoKind::Weights,
            weights,
            metrics: BTreeMap::new(),
            n_examples,
        }
    }

    /// A metrics-only DXO.
    pub fn from_metrics(metrics: BTreeMap<String, f64>) -> Self {
        Dxo {
            kind: DxoKind::Metrics,
            weights: Weights::new(),
            metrics,
            n_examples: 0,
        }
    }

    /// Total scalar elements across all weight tensors.
    pub fn num_elements(&self) -> usize {
        self.weights.values().map(WeightTensor::numel).sum()
    }

    /// Validates the payload: every tensor finite, and (if `reference` is
    /// given) the same names and shapes as the reference model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self, reference: Option<&Weights>) -> Result<(), String> {
        for (name, t) in &self.weights {
            if !t.all_finite() {
                return Err(format!("tensor {name:?} contains non-finite values"));
            }
        }
        if let Some(r) = reference {
            if r.len() != self.weights.len() {
                return Err(format!(
                    "update has {} tensors, global model has {}",
                    self.weights.len(),
                    r.len()
                ));
            }
            for (name, t) in &self.weights {
                match r.get(name) {
                    None => return Err(format!("unknown tensor {name:?} in update")),
                    Some(rt) if rt.dims != t.dims => {
                        return Err(format!(
                            "tensor {name:?} shape {:?} != reference {:?}",
                            t.dims, rt.dims
                        ))
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights() -> Weights {
        let mut w = Weights::new();
        w.insert(
            "a".into(),
            WeightTensor::new(vec![2, 2], vec![1., 2., 3., 4.]),
        );
        w.insert("b".into(), WeightTensor::new(vec![3], vec![0.; 3]));
        w
    }

    #[test]
    fn numel_sums() {
        let d = Dxo::from_weights(weights(), 10);
        assert_eq!(d.num_elements(), 7);
        assert_eq!(d.n_examples, 10);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn bad_tensor_panics() {
        WeightTensor::new(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn validate_accepts_matching() {
        let d = Dxo::from_weights(weights(), 1);
        assert!(d.validate(Some(&weights())).is_ok());
        assert!(d.validate(None).is_ok());
    }

    #[test]
    fn validate_rejects_nan() {
        let mut w = weights();
        w.get_mut("a").unwrap().data[0] = f32::NAN;
        let d = Dxo::from_weights(w, 1);
        let err = d.validate(None).unwrap_err();
        assert!(err.contains("non-finite"));
    }

    #[test]
    fn validate_rejects_shape_change() {
        let mut w = weights();
        w.insert("a".into(), WeightTensor::new(vec![4], vec![0.; 4]));
        let d = Dxo::from_weights(w, 1);
        let err = d.validate(Some(&weights())).unwrap_err();
        assert!(err.contains("shape"), "{err}");
    }

    #[test]
    fn validate_rejects_unknown_tensor() {
        let mut w = weights();
        w.insert("zzz".into(), WeightTensor::new(vec![1], vec![0.]));
        let d = Dxo::from_weights(w, 1);
        assert!(d.validate(Some(&weights())).is_err());
    }
}
