//! Client-side DXO filters (NVFlare's privacy-filter concept).
//!
//! Filters transform an outgoing update before it leaves the site —
//! differential-privacy noise, update compression, secure-aggregation
//! masking. They compose in a [`FilterChain`].

use crate::dxo::{Dxo, Weights};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A transformation applied to an outgoing update.
pub trait Filter: Send {
    /// Transforms `dxo`, given the global weights the round started from.
    fn apply(&mut self, dxo: Dxo, global: &Weights, round: u32) -> Dxo;

    /// Filter name for logs.
    fn name(&self) -> &'static str;
}

/// An ordered chain of filters.
#[derive(Default)]
pub struct FilterChain {
    filters: Vec<Box<dyn Filter>>,
}

impl std::fmt::Debug for FilterChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FilterChain({} filters)", self.filters.len())
    }
}

impl FilterChain {
    /// An empty chain (identity).
    pub fn new() -> Self {
        FilterChain::default()
    }

    /// Appends a filter.
    pub fn push(&mut self, f: Box<dyn Filter>) -> &mut Self {
        self.filters.push(f);
        self
    }

    /// Number of filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True when the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Applies every filter in order.
    pub fn apply(&mut self, mut dxo: Dxo, global: &Weights, round: u32) -> Dxo {
        for f in &mut self.filters {
            dxo = f.apply(dxo, global, round);
        }
        dxo
    }
}

/// Differential-privacy filter: clips the update's deviation from the
/// global model to `clip_norm` (global L2) and adds Gaussian noise with
/// standard deviation `sigma * clip_norm` to each coordinate.
#[derive(Clone, Debug)]
pub struct DpGaussian {
    /// Maximum L2 norm of the weight delta.
    pub clip_norm: f32,
    /// Noise multiplier.
    pub sigma: f32,
    /// Noise seed (per-site).
    pub seed: u64,
}

impl Filter for DpGaussian {
    fn apply(&mut self, mut dxo: Dxo, global: &Weights, round: u32) -> Dxo {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (round as u64).wrapping_mul(0x9E37));
        // Compute the global L2 norm of the delta.
        let mut sq = 0.0f64;
        for (name, t) in &dxo.weights {
            if let Some(g) = global.get(name) {
                for (a, b) in t.data.iter().zip(&g.data) {
                    let d = (a - b) as f64;
                    sq += d * d;
                }
            }
        }
        let norm = sq.sqrt() as f32;
        let scale = if norm > self.clip_norm && norm > 0.0 {
            self.clip_norm / norm
        } else {
            1.0
        };
        let noise_std = self.sigma * self.clip_norm;
        for (name, t) in dxo.weights.iter_mut() {
            if let Some(g) = global.get(name) {
                for (a, &b) in t.data.iter_mut().zip(&g.data) {
                    let delta = (*a - b) * scale;
                    let noise = gaussian(&mut rng) * noise_std;
                    *a = b + delta + noise;
                }
            }
        }
        dxo
    }

    fn name(&self) -> &'static str {
        "DpGaussian"
    }
}

/// Magnitude pruning: zeroes the smallest-|delta| fraction of each tensor's
/// deviation from the global model (bandwidth reduction).
#[derive(Clone, Debug)]
pub struct MagnitudePrune {
    /// Fraction of coordinates to reset to the global value, in `[0, 1)`.
    pub fraction: f32,
}

impl Filter for MagnitudePrune {
    fn apply(&mut self, mut dxo: Dxo, global: &Weights, _round: u32) -> Dxo {
        for (name, t) in dxo.weights.iter_mut() {
            let Some(g) = global.get(name) else { continue };
            let mut mags: Vec<(usize, f32)> = t
                .data
                .iter()
                .zip(&g.data)
                .map(|(a, b)| (a - b).abs())
                .enumerate()
                .collect();
            mags.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            let k = ((t.data.len() as f32) * self.fraction) as usize;
            for &(i, _) in mags.iter().take(k) {
                t.data[i] = g.data[i];
            }
        }
        dxo
    }

    fn name(&self) -> &'static str {
        "MagnitudePrune"
    }
}

/// Pairwise secure-aggregation masking (Bonawitz et al.-style, toy PRG):
/// site `i` adds, for every peer `j`, a pseudorandom mask derived from the
/// shared pair seed — positive when `i < j`, negative otherwise — after
/// scaling its weights by `n_examples`. Summing all sites' payloads cancels
/// every mask, so the server (using [`crate::aggregator::MaskedSum`]) sees
/// only `Σ nᵢwᵢ` while individual updates look like noise.
#[derive(Clone, Debug)]
pub struct SecureAggMask {
    /// This site's index in `0..n_sites`.
    pub site_index: usize,
    /// Total number of sites participating every round.
    pub n_sites: usize,
    /// Shared session seed (from provisioning).
    pub session_seed: u64,
}

impl SecureAggMask {
    fn pair_seed(&self, a: usize, b: usize, round: u32, name: &str) -> u64 {
        let mut h = self.session_seed ^ 0x51_7e_ed;
        for byte in name.bytes() {
            h = (h ^ byte as u64).wrapping_mul(0x100000001b3);
        }
        h ^ ((a as u64) << 40) ^ ((b as u64) << 20) ^ round as u64
    }
}

impl Filter for SecureAggMask {
    fn apply(&mut self, mut dxo: Dxo, _global: &Weights, round: u32) -> Dxo {
        let n = dxo.n_examples.max(1) as f32;
        for (name, t) in dxo.weights.iter_mut() {
            // Scale to n·w so MaskedSum recovers the weighted mean.
            for v in t.data.iter_mut() {
                *v *= n;
            }
            for peer in 0..self.n_sites {
                if peer == self.site_index {
                    continue;
                }
                let (lo, hi) = if self.site_index < peer {
                    (self.site_index, peer)
                } else {
                    (peer, self.site_index)
                };
                let sign = if self.site_index < peer { 1.0 } else { -1.0 };
                let mut rng = StdRng::seed_from_u64(self.pair_seed(lo, hi, round, name));
                for v in t.data.iter_mut() {
                    *v += sign * (rng.random::<f32>() - 0.5) * 2.0;
                }
            }
        }
        dxo
    }

    fn name(&self) -> &'static str {
        "SecureAggMask"
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-12);
    let u2: f32 = rng.random();
    (-2.0f32 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dxo::WeightTensor;

    fn weights(v: f32) -> Weights {
        let mut w = Weights::new();
        w.insert("p".into(), WeightTensor::new(vec![4], vec![v; 4]));
        w
    }

    #[test]
    fn dp_clips_large_delta() {
        let global = weights(0.0);
        let update = Dxo::from_weights(weights(100.0), 10);
        let mut f = DpGaussian {
            clip_norm: 1.0,
            sigma: 0.0,
            seed: 1,
        };
        let out = f.apply(update, &global, 0);
        let norm: f32 = out.weights["p"]
            .data
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "clipped norm {norm}");
    }

    #[test]
    fn dp_noise_perturbs() {
        let global = weights(0.0);
        let update = Dxo::from_weights(weights(0.1), 10);
        let mut f = DpGaussian {
            clip_norm: 10.0,
            sigma: 0.5,
            seed: 3,
        };
        let out = f.apply(update.clone(), &global, 0);
        assert_ne!(out.weights["p"].data, update.weights["p"].data);
        // Deterministic per (seed, round).
        let mut f2 = DpGaussian {
            clip_norm: 10.0,
            sigma: 0.5,
            seed: 3,
        };
        let out2 = f2.apply(update.clone(), &global, 0);
        assert_eq!(out.weights["p"].data, out2.weights["p"].data);
        let out3 = f2.apply(update, &global, 1);
        assert_ne!(out.weights["p"].data, out3.weights["p"].data);
    }

    #[test]
    fn prune_zeroes_smallest_deltas() {
        let global = weights(0.0);
        let mut w = Weights::new();
        w.insert(
            "p".into(),
            WeightTensor::new(vec![4], vec![0.01, -5.0, 0.02, 3.0]),
        );
        let mut f = MagnitudePrune { fraction: 0.5 };
        let out = f.apply(Dxo::from_weights(w, 1), &global, 0);
        assert_eq!(out.weights["p"].data, vec![0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn secure_masks_cancel_in_sum() {
        let global = weights(0.0);
        let n_sites = 4;
        let values = [1.0f32, 2.0, 3.0, 4.0];
        let counts = [10u64, 20, 30, 40];
        let mut masked: Vec<Dxo> = Vec::new();
        for i in 0..n_sites {
            let mut f = SecureAggMask {
                site_index: i,
                n_sites,
                session_seed: 99,
            };
            masked.push(f.apply(Dxo::from_weights(weights(values[i]), counts[i]), &global, 2));
        }
        // Individual payloads look nothing like n*w … (checked over the
        // whole vector: a single coordinate's masks can nearly cancel)
        let dist: f32 = masked[0].weights["p"]
            .data
            .iter()
            .map(|v| (v - 10.0).abs())
            .sum();
        assert!(dist > 0.5, "masked payload too close to n*w: {dist}");
        // … but the sum is exactly Σ n_i w_i.
        let mut sum = [0.0f64; 4];
        for m in &masked {
            for (s, &v) in sum.iter_mut().zip(&m.weights["p"].data) {
                *s += v as f64;
            }
        }
        let expected: f64 = values
            .iter()
            .zip(counts)
            .map(|(v, c)| *v as f64 * c as f64)
            .sum();
        for s in sum {
            assert!((s - expected).abs() < 1e-2, "{s} vs {expected}");
        }
    }

    #[test]
    fn chain_applies_in_order() {
        let global = weights(0.0);
        let mut chain = FilterChain::new();
        assert!(chain.is_empty());
        chain.push(Box::new(MagnitudePrune { fraction: 0.0 }));
        chain.push(Box::new(DpGaussian {
            clip_norm: 1e6,
            sigma: 0.0,
            seed: 0,
        }));
        assert_eq!(chain.len(), 2);
        let update = Dxo::from_weights(weights(1.5), 5);
        let out = chain.apply(update.clone(), &global, 0);
        // Both filters are identity at these settings.
        for (a, b) in out.weights["p"].data.iter().zip(&update.weights["p"].data) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
