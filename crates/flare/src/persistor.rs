//! Global-model persistence (NVFlare's "persist model on server" step,
//! visible in the paper's Fig. 3 round log).
//!
//! All files land through [`crate::checkpoint`]'s atomic tmp+rename
//! writer with a CRC trailer, so a crash mid-save can never truncate a
//! previously good snapshot. On construction, [`FilePersistor`] scans its
//! directory and rebuilds `best()`/`latest()`/`load_checkpoint()` from
//! whatever valid files survive, skipping (and reporting) corrupt ones —
//! the recovery half of the crash-safe resume story in `DESIGN.md`.

use crate::checkpoint::{load_weights_file, save_weights_file, RunCheckpoint, RUN_CHECKPOINT_FILE};
use crate::dxo::Weights;
use crate::log::EventLog;
use crate::FlareError;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Stores global model snapshots per round and tracks the best one.
pub trait Persistor: Send {
    /// Persists the round's aggregated model and its validation metric (if
    /// the workflow validated it).
    fn save(&mut self, round: u32, weights: &Weights, metric: Option<f64>);

    /// The best model saved so far (highest metric; falls back to latest
    /// when no metrics were reported).
    fn best(&self) -> Option<(Weights, Option<f64>)>;

    /// The most recently saved model.
    fn latest(&self) -> Option<Weights>;

    /// Persists the full run-loop state after a round so a crashed run can
    /// resume at round *k+1*. Default: no durable run state.
    fn save_checkpoint(&mut self, _ckpt: &RunCheckpoint) {}

    /// The most recent [`RunCheckpoint`] this persistor holds (saved this
    /// run or recovered from disk), if any.
    fn load_checkpoint(&self) -> Option<RunCheckpoint> {
        None
    }
}

/// Keeps snapshots in memory (simulator default).
#[derive(Debug, Default)]
pub struct InMemoryPersistor {
    latest: Option<Weights>,
    best: Option<(Weights, f64)>,
    ckpt: Option<RunCheckpoint>,
}

impl InMemoryPersistor {
    /// Creates an empty persistor.
    pub fn new() -> Self {
        InMemoryPersistor::default()
    }
}

impl Persistor for InMemoryPersistor {
    fn save(&mut self, _round: u32, weights: &Weights, metric: Option<f64>) {
        self.latest = Some(weights.clone());
        if let Some(m) = metric {
            let better = self.best.as_ref().map(|(_, b)| m > *b).unwrap_or(true);
            if better {
                self.best = Some((weights.clone(), m));
            }
        }
    }

    fn best(&self) -> Option<(Weights, Option<f64>)> {
        match (&self.best, &self.latest) {
            (Some((w, m)), _) => Some((w.clone(), Some(*m))),
            (None, Some(w)) => Some((w.clone(), None)),
            (None, None) => None,
        }
    }

    fn latest(&self) -> Option<Weights> {
        self.latest.clone()
    }

    fn save_checkpoint(&mut self, ckpt: &RunCheckpoint) {
        self.ckpt = Some(ckpt.clone());
    }

    fn load_checkpoint(&self) -> Option<RunCheckpoint> {
        self.ckpt.clone()
    }
}

/// Name of the exclusive writer-lock file a [`FilePersistor`] holds in
/// its directory while alive.
pub const LOCK_FILE: &str = ".lock";

/// Persists each round's model to `<dir>/round_<n>.cfw` using the wire
/// codec, plus `best.cfw` (the paper's "obtaining optimal global models")
/// and the `run.cfc` run-state checkpoint. Every write is atomic
/// (tmp+rename, CRC trailer); construction recovers state from an
/// existing directory.
///
/// Construction also takes an exclusive lock file (`.lock`, holding the
/// writer's pid) and refuses to open a directory another live writer
/// holds — two concurrent runs silently interleaving `round_*.cfw`
/// files would corrupt both resume stories. A lock left behind by a
/// crashed (dead-pid) process is stolen with a warning.
#[derive(Debug)]
pub struct FilePersistor {
    dir: PathBuf,
    memory: InMemoryPersistor,
    log: EventLog,
    /// Keep at most this many `round_<n>.cfw` files (oldest pruned first);
    /// `None` keeps everything. `best.cfw`/`run.cfc` are never pruned.
    retain: Option<usize>,
    /// Round numbers of the `round_<n>.cfw` files currently on disk.
    saved_rounds: Vec<u32>,
    /// Paths already warned about, so a persistently failing disk logs
    /// once per path instead of once per round.
    warned: BTreeSet<PathBuf>,
    /// `best.cfw` recovered from disk when no checkpoint recorded its
    /// metric (the metric is lost; the weights are not).
    recovered_best: Option<Weights>,
    /// The held `.lock` path, removed on drop.
    lock: Option<PathBuf>,
}

/// Whether `pid` names a live process. Linux reads `/proc`; elsewhere
/// there is no dependency-free oracle, so a foreign-pid lock is treated
/// as stale (same-process duplicates are still caught by the pid-match
/// check, which does not need an oracle).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        false
    }
}

impl FilePersistor {
    /// Creates the directory if needed, takes the exclusive writer lock,
    /// and recovers any state a previous run left behind: leftover
    /// `*.tmp*` files are removed, then `run.cfc`, `best.cfw`, and the
    /// `round_<n>.cfw` files are loaded (CRC-verified); corrupt files are
    /// skipped, warned about, and counted in `flare.persist.corrupt`.
    ///
    /// # Errors
    ///
    /// [`FlareError::Checkpoint`] if another live writer already holds
    /// the directory's `.lock`; the I/O error if the directory cannot be
    /// created or read.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, FlareError> {
        std::fs::create_dir_all(dir.as_ref())?;
        let mut p = FilePersistor {
            dir: dir.as_ref().to_path_buf(),
            memory: InMemoryPersistor::new(),
            log: EventLog::new(),
            retain: None,
            saved_rounds: Vec::new(),
            warned: BTreeSet::new(),
            recovered_best: None,
            lock: None,
        };
        p.acquire_lock()?;
        p.recover()?;
        Ok(p)
    }

    /// Creates `<dir>/.lock` exclusively (pid inside). An existing lock
    /// from a live process — including this one: a second persistor on
    /// the same directory in-process — is a hard error; a dead holder's
    /// lock is stolen with a warning.
    fn acquire_lock(&mut self) -> Result<(), FlareError> {
        use std::io::Write;
        let path = self.dir.join(LOCK_FILE);
        // Bounded retry: stealing a stale lock races other stealers, and
        // losing that race must re-examine the fresh lock, not spin.
        for _ in 0..8 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    self.lock = Some(path);
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid == std::process::id() || pid_alive(pid) => {
                            return Err(FlareError::Checkpoint(format!(
                                "checkpoint directory {:?} already has a live writer \
                                 (pid {pid} holds {LOCK_FILE}); two runs must not share \
                                 one checkpoint directory — give each job its own",
                                self.dir
                            )));
                        }
                        _ => {
                            // Dead pid (or unreadable content from a crash
                            // mid-write): the holder is gone, steal it.
                            self.log.warn(
                                "FilePersistor",
                                format!(
                                    "stealing stale lock in {:?} (holder {} is gone)",
                                    self.dir,
                                    holder.map_or("unknown".into(), |p| p.to_string())
                                ),
                            );
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(FlareError::Checkpoint(format!(
            "could not acquire {LOCK_FILE} in {:?}: lost the steal race repeatedly",
            self.dir
        )))
    }

    /// Routes recovery/persistence warnings into a shared run log.
    pub fn with_log(mut self, log: EventLog) -> Self {
        self.log = log;
        self
    }

    /// Keeps at most `keep` per-round snapshots on disk, pruning the
    /// oldest first. `best.cfw` and `run.cfc` are never pruned.
    pub fn with_retention(mut self, keep: usize) -> Self {
        self.retain = Some(keep.max(1));
        self.prune();
        self
    }

    /// The directory this persistor writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads a previously saved model file, validating its CRC trailer
    /// (files from before the trailer existed still load).
    ///
    /// # Errors
    ///
    /// I/O, CRC, or codec errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Weights, FlareError> {
        load_weights_file(path)
    }

    fn report_corrupt(&self, path: &Path, err: &FlareError) {
        clinfl_obs::add_counter("flare.persist.corrupt", 1);
        self.log.warn(
            "FilePersistor",
            format!("skipping unusable checkpoint file {path:?}: {err}"),
        );
    }

    /// Scans the directory and rebuilds in-memory state from valid files.
    fn recover(&mut self) -> Result<(), FlareError> {
        // A crash can strand `<name>.tmp<pid>` files; they were never
        // renamed into place, so they are garbage by construction.
        let mut round_files: Vec<u32> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.contains(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            } else if let Some(n) = name
                .strip_prefix("round_")
                .and_then(|s| s.strip_suffix(".cfw"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                round_files.push(n);
            }
        }
        round_files.sort_unstable();

        let ckpt_path = self.dir.join(RUN_CHECKPOINT_FILE);
        if ckpt_path.exists() {
            match RunCheckpoint::load(&ckpt_path) {
                Ok(ckpt) => self.memory.ckpt = Some(ckpt),
                Err(e) => self.report_corrupt(&ckpt_path, &e),
            }
        }

        let best_path = self.dir.join("best.cfw");
        if best_path.exists() {
            match load_weights_file(&best_path) {
                Ok(w) => {
                    // The checkpoint remembers which metric best.cfw won
                    // with; without it the weights survive metric-less.
                    match self.memory.ckpt.as_ref().and_then(|c| c.best_metric) {
                        Some(m) => self.memory.best = Some((w, m)),
                        None => self.recovered_best = Some(w),
                    }
                }
                Err(e) => self.report_corrupt(&best_path, &e),
            }
        }

        // Latest = the highest-numbered round file that still validates.
        for &n in round_files.iter().rev() {
            let path = self.dir.join(format!("round_{n}.cfw"));
            match load_weights_file(&path) {
                Ok(w) => {
                    self.memory.latest = Some(w);
                    break;
                }
                Err(e) => self.report_corrupt(&path, &e),
            }
        }
        self.saved_rounds = round_files;
        if self.memory.ckpt.is_some() || self.memory.latest.is_some() {
            self.log.info(
                "FilePersistor",
                format!(
                    "recovered state from {:?}: {} round file(s){}",
                    self.dir,
                    self.saved_rounds.len(),
                    self.memory
                        .ckpt
                        .as_ref()
                        .map(|c| format!(", run checkpoint at round {}", c.next_round))
                        .unwrap_or_default()
                ),
            );
        }
        Ok(())
    }

    fn write(&mut self, name: &str, weights: &Weights) {
        let path = self.dir.join(name);
        // Persistence failures must not abort a training run, but they are
        // no longer silent: counted, and warned once per path.
        if let Err(e) = save_weights_file(&path, weights) {
            clinfl_obs::add_counter("flare.persist.errors", 1);
            if self.warned.insert(path.clone()) {
                self.log.warn(
                    "FilePersistor",
                    format!("failed to persist {path:?}: {e} (further failures counted only)"),
                );
            }
        }
    }

    fn prune(&mut self) {
        let Some(keep) = self.retain else { return };
        while self.saved_rounds.len() > keep {
            let oldest = self.saved_rounds.remove(0);
            let _ = std::fs::remove_file(self.dir.join(format!("round_{oldest}.cfw")));
        }
    }
}

impl Drop for FilePersistor {
    fn drop(&mut self) {
        // Release the writer lock; a failed remove (directory already
        // gone) leaves a stale lock the next writer will steal.
        if let Some(lock) = self.lock.take() {
            let _ = std::fs::remove_file(lock);
        }
    }
}

impl Persistor for FilePersistor {
    fn save(&mut self, round: u32, weights: &Weights, metric: Option<f64>) {
        self.write(&format!("round_{round}.cfw"), weights);
        if self.saved_rounds.last() != Some(&round) {
            self.saved_rounds.push(round);
        }
        self.prune();
        let prev_best = self.memory.best.as_ref().map(|(_, m)| *m);
        self.memory.save(round, weights, metric);
        let is_new_best = match (metric, prev_best) {
            (Some(m), Some(b)) => m > b,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if is_new_best {
            self.write("best.cfw", weights);
            self.recovered_best = None;
        }
    }

    fn best(&self) -> Option<(Weights, Option<f64>)> {
        match (self.memory.best(), &self.recovered_best) {
            (Some((w, m)), _) if m.is_some() => Some((w, m)),
            (_, Some(w)) => Some((w.clone(), None)),
            (other, None) => other,
        }
    }

    fn latest(&self) -> Option<Weights> {
        self.memory.latest()
    }

    fn save_checkpoint(&mut self, ckpt: &RunCheckpoint) {
        let path = self.dir.join(RUN_CHECKPOINT_FILE);
        if let Err(e) = ckpt.save(&path) {
            clinfl_obs::add_counter("flare.persist.errors", 1);
            if self.warned.insert(path.clone()) {
                self.log.warn(
                    "FilePersistor",
                    format!("failed to persist {path:?}: {e} (further failures counted only)"),
                );
            }
        }
        self.memory.save_checkpoint(ckpt);
    }

    fn load_checkpoint(&self) -> Option<RunCheckpoint> {
        self.memory.load_checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dxo::WeightTensor;

    fn w(v: f32) -> Weights {
        let mut m = Weights::new();
        m.insert("p".into(), WeightTensor::new(vec![2], vec![v, v]));
        m
    }

    fn dir(test: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("clinfl-pers-{test}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn ckpt(next_round: u32, best_metric: Option<f64>) -> RunCheckpoint {
        RunCheckpoint {
            seed: 7,
            next_round,
            total_rounds: 4,
            global: w(next_round as f32),
            rounds: vec![],
            best_metric,
            best_round: best_metric.map(|_| next_round.saturating_sub(1)),
            tree_depth: 0,
            tree_fanout: 0,
        }
    }

    #[test]
    fn in_memory_tracks_best_and_latest() {
        let mut p = InMemoryPersistor::new();
        assert!(p.best().is_none());
        p.save(0, &w(1.0), Some(0.5));
        p.save(1, &w(2.0), Some(0.9));
        p.save(2, &w(3.0), Some(0.7));
        assert_eq!(p.latest().unwrap()["p"].data, vec![3.0, 3.0]);
        let (best, m) = p.best().unwrap();
        assert_eq!(best["p"].data, vec![2.0, 2.0]);
        assert_eq!(m, Some(0.9));
    }

    #[test]
    fn in_memory_without_metrics_falls_back_to_latest() {
        let mut p = InMemoryPersistor::new();
        p.save(0, &w(1.0), None);
        let (best, m) = p.best().unwrap();
        assert_eq!(best["p"].data, vec![1.0, 1.0]);
        assert_eq!(m, None);
    }

    #[test]
    fn file_persistor_roundtrips() {
        let d = dir("roundtrip");
        let mut p = FilePersistor::new(&d).unwrap();
        p.save(0, &w(4.0), Some(0.8));
        p.save(1, &w(5.0), Some(0.6));
        let loaded = FilePersistor::load(d.join("round_0.cfw")).unwrap();
        assert_eq!(loaded["p"].data, vec![4.0, 4.0]);
        let best = FilePersistor::load(d.join("best.cfw")).unwrap();
        assert_eq!(best["p"].data, vec![4.0, 4.0]);
        let latest = p.latest().unwrap();
        assert_eq!(latest["p"].data, vec![5.0, 5.0]);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn restart_recovers_best_latest_and_checkpoint() {
        let d = dir("restart");
        {
            let mut p = FilePersistor::new(&d).unwrap();
            p.save(0, &w(1.0), Some(0.9));
            p.save(1, &w(2.0), Some(0.4));
            p.save_checkpoint(&ckpt(2, Some(0.9)));
        } // "crash": the persistor is dropped, memory is gone
        let p = FilePersistor::new(&d).unwrap();
        assert_eq!(p.latest().unwrap()["p"].data, vec![2.0, 2.0]);
        let (best, m) = p.best().unwrap();
        assert_eq!(best["p"].data, vec![1.0, 1.0]);
        assert_eq!(m, Some(0.9));
        let c = p.load_checkpoint().unwrap();
        assert_eq!(c.next_round, 2);
        assert_eq!(c.best_metric, Some(0.9));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn restart_without_checkpoint_recovers_metricless_best() {
        let d = dir("no-ckpt");
        {
            let mut p = FilePersistor::new(&d).unwrap();
            p.save(0, &w(3.0), Some(0.7));
        }
        std::fs::remove_file(d.join(RUN_CHECKPOINT_FILE)).ok();
        let p = FilePersistor::new(&d).unwrap();
        assert!(p.load_checkpoint().is_none());
        let (best, m) = p.best().unwrap();
        assert_eq!(best["p"].data, vec![3.0, 3.0]);
        assert_eq!(m, None, "metric was only in the checkpoint");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn recovery_skips_corrupt_files_and_reports_them() {
        let d = dir("corrupt");
        let log = EventLog::new();
        {
            let mut p = FilePersistor::new(&d).unwrap();
            p.save(0, &w(1.0), Some(0.5));
            p.save(1, &w(2.0), Some(0.8));
            p.save_checkpoint(&ckpt(2, Some(0.8)));
        }
        // Corrupt the newest round file and the run checkpoint.
        for name in ["round_1.cfw", RUN_CHECKPOINT_FILE] {
            let path = d.join(name);
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
        }
        let p = FilePersistor::new(&d).unwrap().with_log(log.clone());
        // Corrupt checkpoint skipped; latest falls back to round_0.
        assert!(p.load_checkpoint().is_none());
        assert_eq!(p.latest().unwrap()["p"].data, vec![1.0, 1.0]);
        // best.cfw is intact but its metric lived in the (corrupt)
        // checkpoint, so it comes back metric-less.
        let (best, m) = p.best().unwrap();
        assert_eq!(best["p"].data, vec![2.0, 2.0]);
        assert_eq!(m, None);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn leftover_tmp_files_are_cleaned() {
        let d = dir("tmp-clean");
        std::fs::create_dir_all(&d).unwrap();
        std::fs::write(d.join("round_0.cfw.tmp123"), b"partial").unwrap();
        let _ = FilePersistor::new(&d).unwrap();
        assert!(!d.join("round_0.cfw.tmp123").exists());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn retention_prunes_oldest_round_files_only() {
        let d = dir("retain");
        let mut p = FilePersistor::new(&d).unwrap().with_retention(2);
        for r in 0..5 {
            p.save(r, &w(r as f32), Some(f64::from(r)));
        }
        assert!(!d.join("round_0.cfw").exists());
        assert!(!d.join("round_2.cfw").exists());
        assert!(d.join("round_3.cfw").exists());
        assert!(d.join("round_4.cfw").exists());
        assert!(d.join("best.cfw").exists(), "best is never pruned");
        // Recovery respects what retention left behind.
        drop(p);
        let p = FilePersistor::new(&d).unwrap();
        assert_eq!(p.latest().unwrap()["p"].data, vec![4.0, 4.0]);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn second_writer_on_same_dir_is_refused() {
        let d = dir("lock-refuse");
        let first = FilePersistor::new(&d).unwrap();
        let err = FilePersistor::new(&d).expect_err("second writer must be refused");
        let msg = err.to_string();
        assert!(
            msg.contains("live writer") && msg.contains(&std::process::id().to_string()),
            "unhelpful lock error: {msg}"
        );
        // Releasing the first writer frees the directory for the next.
        drop(first);
        let _ = FilePersistor::new(&d).expect("lock released on drop");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn stale_lock_from_dead_process_is_stolen() {
        let d = dir("lock-stale");
        std::fs::create_dir_all(&d).unwrap();
        // No live process has pid 0 (the kernel's idle task on Linux has
        // no /proc entry), so this lock reads as a crashed holder.
        std::fs::write(d.join(LOCK_FILE), "0").unwrap();
        let p = FilePersistor::new(&d).expect("stale lock must be stolen");
        let held = std::fs::read_to_string(d.join(LOCK_FILE)).unwrap();
        assert_eq!(held.trim(), std::process::id().to_string());
        drop(p);
        assert!(!d.join(LOCK_FILE).exists(), "lock removed on drop");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn write_failures_are_counted_not_fatal() {
        let d = dir("write-fail");
        let log = EventLog::new();
        let mut p = FilePersistor::new(&d).unwrap().with_log(log.clone());
        let before = clinfl_obs::counter_value("flare.persist.errors");
        std::fs::remove_dir_all(&d).unwrap(); // yank the disk out
        p.save(0, &w(1.0), Some(0.5));
        p.save(1, &w(2.0), Some(0.9));
        assert!(clinfl_obs::counter_value("flare.persist.errors") > before);
        // In-memory state still advances, so the run itself is unharmed.
        assert_eq!(p.latest().unwrap()["p"].data, vec![2.0, 2.0]);
        assert!(log.contains("failed to persist"));
    }
}
