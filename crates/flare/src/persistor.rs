//! Global-model persistence (NVFlare's "persist model on server" step,
//! visible in the paper's Fig. 3 round log).

use crate::dxo::Weights;
use crate::wire::{WireDecode, WireEncode};
use crate::FlareError;
use std::path::{Path, PathBuf};

/// Stores global model snapshots per round and tracks the best one.
pub trait Persistor: Send {
    /// Persists the round's aggregated model and its validation metric (if
    /// the workflow validated it).
    fn save(&mut self, round: u32, weights: &Weights, metric: Option<f64>);

    /// The best model saved so far (highest metric; falls back to latest
    /// when no metrics were reported).
    fn best(&self) -> Option<(Weights, Option<f64>)>;

    /// The most recently saved model.
    fn latest(&self) -> Option<Weights>;
}

/// Keeps snapshots in memory (simulator default).
#[derive(Debug, Default)]
pub struct InMemoryPersistor {
    latest: Option<Weights>,
    best: Option<(Weights, f64)>,
}

impl InMemoryPersistor {
    /// Creates an empty persistor.
    pub fn new() -> Self {
        InMemoryPersistor::default()
    }
}

impl Persistor for InMemoryPersistor {
    fn save(&mut self, _round: u32, weights: &Weights, metric: Option<f64>) {
        self.latest = Some(weights.clone());
        if let Some(m) = metric {
            let better = self.best.as_ref().map(|(_, b)| m > *b).unwrap_or(true);
            if better {
                self.best = Some((weights.clone(), m));
            }
        }
    }

    fn best(&self) -> Option<(Weights, Option<f64>)> {
        match (&self.best, &self.latest) {
            (Some((w, m)), _) => Some((w.clone(), Some(*m))),
            (None, Some(w)) => Some((w.clone(), None)),
            (None, None) => None,
        }
    }

    fn latest(&self) -> Option<Weights> {
        self.latest.clone()
    }
}

/// Persists each round's model to `<dir>/round_<n>.cfw` using the wire
/// codec, plus `best.cfw` (the paper's "obtaining optimal global models").
#[derive(Debug)]
pub struct FilePersistor {
    dir: PathBuf,
    memory: InMemoryPersistor,
}

impl FilePersistor {
    /// Creates the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, FlareError> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(FilePersistor {
            dir: dir.as_ref().to_path_buf(),
            memory: InMemoryPersistor::new(),
        })
    }

    /// Loads a previously saved model file.
    ///
    /// # Errors
    ///
    /// I/O or codec errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Weights, FlareError> {
        let bytes = std::fs::read(path.as_ref())?;
        Weights::from_frame(&bytes)
    }

    fn write(&self, name: &str, weights: &Weights) {
        let path = self.dir.join(name);
        // Persistence failures must not abort a training run; they are
        // logged by the workflow via the returned state instead.
        let _ = std::fs::write(path, weights.to_frame());
    }
}

impl Persistor for FilePersistor {
    fn save(&mut self, round: u32, weights: &Weights, metric: Option<f64>) {
        self.write(&format!("round_{round}.cfw"), weights);
        let prev_best = self.memory.best.as_ref().map(|(_, m)| *m);
        self.memory.save(round, weights, metric);
        let is_new_best = match (metric, prev_best) {
            (Some(m), Some(b)) => m > b,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if is_new_best {
            self.write("best.cfw", weights);
        }
    }

    fn best(&self) -> Option<(Weights, Option<f64>)> {
        self.memory.best()
    }

    fn latest(&self) -> Option<Weights> {
        self.memory.latest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dxo::WeightTensor;

    fn w(v: f32) -> Weights {
        let mut m = Weights::new();
        m.insert("p".into(), WeightTensor::new(vec![2], vec![v, v]));
        m
    }

    #[test]
    fn in_memory_tracks_best_and_latest() {
        let mut p = InMemoryPersistor::new();
        assert!(p.best().is_none());
        p.save(0, &w(1.0), Some(0.5));
        p.save(1, &w(2.0), Some(0.9));
        p.save(2, &w(3.0), Some(0.7));
        assert_eq!(p.latest().unwrap()["p"].data, vec![3.0, 3.0]);
        let (best, m) = p.best().unwrap();
        assert_eq!(best["p"].data, vec![2.0, 2.0]);
        assert_eq!(m, Some(0.9));
    }

    #[test]
    fn in_memory_without_metrics_falls_back_to_latest() {
        let mut p = InMemoryPersistor::new();
        p.save(0, &w(1.0), None);
        let (best, m) = p.best().unwrap();
        assert_eq!(best["p"].data, vec![1.0, 1.0]);
        assert_eq!(m, None);
    }

    #[test]
    fn file_persistor_roundtrips() {
        let dir = std::env::temp_dir().join(format!("clinfl-pers-{}", std::process::id()));
        let mut p = FilePersistor::new(&dir).unwrap();
        p.save(0, &w(4.0), Some(0.8));
        p.save(1, &w(5.0), Some(0.6));
        let loaded = FilePersistor::load(dir.join("round_0.cfw")).unwrap();
        assert_eq!(loaded["p"].data, vec![4.0, 4.0]);
        let best = FilePersistor::load(dir.join("best.cfw")).unwrap();
        assert_eq!(best["p"].data, vec![4.0, 4.0]);
        let latest = p.latest().unwrap();
        assert_eq!(latest["p"].data, vec![5.0, 5.0]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
