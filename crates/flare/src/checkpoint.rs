//! Crash-safe checkpointing for the federated run-loop.
//!
//! Real NVFlare survives server restarts through job snapshots ("NVIDIA
//! FLARE: Federated Learning from Simulation to Real-World", §job
//! persistence); this module is the equivalent for the `clinfl` runtime.
//! It provides three layers:
//!
//! 1. **Atomic, verified files** — [`atomic_write_with_crc`] writes to a
//!    temporary file in the same directory, fsyncs, then renames over the
//!    destination, and appends an 8-byte CRC trailer
//!    (`"CFC1"` + CRC-32 of the body). [`read_with_crc`] validates the
//!    trailer on load, so a torn write can never masquerade as a valid
//!    checkpoint: either the old file survives intact or the new one is
//!    complete. Files written before the trailer existed (no `"CFC1"`
//!    marker) still load.
//! 2. **Weights files** — [`save_weights_file`] / [`load_weights_file`]
//!    move a [`Weights`] map through that format (the `.cfw` files the
//!    [`crate::persistor::FilePersistor`] writes).
//! 3. **Run state** — [`RunCheckpoint`] captures everything the
//!    [`crate::controller::ScatterAndGather`] loop needs to restart at
//!    round *k+1* after a crash: the round cursor, the aggregated global
//!    weights, every completed [`RoundSummary`] (contributors, per-site
//!    metrics, drop/quorum bookkeeping), the run seed, and the
//!    best-metric state. It rides the same wire codec as every federated
//!    message and carries an explicit schema version so old binaries
//!    reject checkpoints from the future with a useful error instead of
//!    misparsing them.

use crate::controller::RoundSummary;
use crate::dxo::Weights;
use crate::wire::{WireDecode, WireEncode, WireReader};
use crate::FlareError;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Schema version written into every [`RunCheckpoint`]; decoding rejects
/// anything newer. Version 2 added the aggregation-tree topology
/// (`tree_depth`/`tree_fanout`); version-1 files decode as flat runs.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 2;

/// Marker that precedes the CRC-32 value in the 8-byte file trailer.
pub const CRC_TRAILER_MAGIC: [u8; 4] = *b"CFC1";

/// Default file name for the run-state checkpoint inside a checkpoint
/// directory.
pub const RUN_CHECKPOINT_FILE: &str = "run.cfc";

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Writes `body` plus a CRC trailer to `path` atomically: the bytes land
/// in a `.tmp` sibling first, are fsynced, and only then renamed over the
/// destination. A crash at any instant leaves either the previous file
/// untouched or the complete new one — never a truncated mix.
///
/// # Errors
///
/// Propagates I/O failures (the temporary file is cleaned up best-effort).
pub fn atomic_write_with_crc(path: impl AsRef<Path>, body: &[u8]) -> Result<(), FlareError> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| FlareError::Checkpoint(format!("invalid checkpoint path {path:?}")))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp{}", std::process::id()));
    let result = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body)?;
        f.write_all(&CRC_TRAILER_MAGIC)?;
        f.write_all(&crc32(body).to_le_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Durability of the rename itself requires fsyncing the directory;
        // best-effort, since not every platform allows opening a directory.
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(FlareError::Io)
}

/// Reads a file written by [`atomic_write_with_crc`], validates the CRC
/// trailer, and returns the body. Files without the trailer (written
/// before it existed) are returned whole; their framing is still fully
/// validated by the caller's decoder.
///
/// # Errors
///
/// [`FlareError::Io`] on read failure, [`FlareError::Checkpoint`] on a
/// CRC mismatch (torn or bit-flipped file).
pub fn read_with_crc(path: impl AsRef<Path>) -> Result<Vec<u8>, FlareError> {
    let path = path.as_ref();
    let mut buf = std::fs::read(path)?;
    let n = buf.len();
    if n >= 8 && buf[n - 8..n - 4] == CRC_TRAILER_MAGIC {
        let stored = u32::from_le_bytes(buf[n - 4..].try_into().expect("4-byte slice"));
        let computed = crc32(&buf[..n - 8]);
        if stored != computed {
            return Err(FlareError::Checkpoint(format!(
                "CRC mismatch in {path:?}: stored {stored:#010x}, computed {computed:#010x} \
                 (torn or corrupted write)"
            )));
        }
        buf.truncate(n - 8);
    }
    Ok(buf)
}

/// Saves weights to `path` atomically in the framed wire format with a
/// CRC trailer (`.cfw`).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_weights_file(path: impl AsRef<Path>, weights: &Weights) -> Result<(), FlareError> {
    atomic_write_with_crc(path, &weights.to_frame())
}

/// Loads and verifies weights previously written by [`save_weights_file`]
/// (or by the pre-CRC `std::fs::write` path — legacy files still load).
///
/// # Errors
///
/// I/O, CRC, or codec errors on truncated / corrupt files.
pub fn load_weights_file(path: impl AsRef<Path>) -> Result<Weights, FlareError> {
    let body = read_with_crc(path)?;
    Weights::from_frame(&body)
}

/// Everything the ScatterAndGather loop needs to resume after a crash.
#[derive(Clone, Debug, PartialEq)]
pub struct RunCheckpoint {
    /// The run seed the checkpoint was produced under; a resume with a
    /// different seed is refused (its fault/data schedule would diverge).
    pub seed: u64,
    /// The next round to execute (one past the last completed round).
    pub next_round: u32,
    /// Total rounds `E` of the run that wrote the checkpoint.
    pub total_rounds: u32,
    /// Aggregated global weights after round `next_round - 1`.
    pub global: Weights,
    /// Summaries of every completed round (contributors, per-site
    /// metrics, and drop/quorum bookkeeping).
    pub rounds: Vec<RoundSummary>,
    /// Best global validation metric seen so far, if any round validated.
    pub best_metric: Option<f64>,
    /// Round that produced `best_metric`.
    pub best_round: Option<u32>,
    /// Aggregation-tree depth the run was using (`0` = flat fleet). A
    /// resume restores the same topology so the fault/data schedule and
    /// aggregation order match the interrupted run.
    pub tree_depth: u32,
    /// Fan-out of each aggregation-tree node (`0` = flat fleet).
    pub tree_fanout: u32,
}

impl RunCheckpoint {
    /// Saves the checkpoint atomically (tmp + rename, CRC trailer).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), FlareError> {
        atomic_write_with_crc(path, &self.to_frame())
    }

    /// Loads and verifies a checkpoint written by [`RunCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// I/O errors, CRC mismatches, unknown schema versions, and codec
    /// errors on malformed bodies.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, FlareError> {
        let body = read_with_crc(path)?;
        RunCheckpoint::from_frame(&body)
    }
}

impl WireEncode for RoundSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.round.encode(out);
        self.contributors.encode(out);
        self.client_metrics.encode(out);
        self.global_metric.encode(out);
        self.dropped.encode(out);
    }
}

impl WireDecode for RoundSummary {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        Ok(RoundSummary {
            round: u32::decode(r)?,
            contributors: Vec::decode(r)?,
            client_metrics: BTreeMap::decode(r)?,
            global_metric: Option::decode(r)?,
            dropped: Vec::decode(r)?,
        })
    }
}

impl WireEncode for RunCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        CHECKPOINT_SCHEMA_VERSION.encode(out);
        self.seed.encode(out);
        self.next_round.encode(out);
        self.total_rounds.encode(out);
        self.global.encode(out);
        self.rounds.encode(out);
        self.best_metric.encode(out);
        self.best_round.encode(out);
        self.tree_depth.encode(out);
        self.tree_fanout.encode(out);
    }
}

impl WireDecode for RunCheckpoint {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        let version = u32::decode(r)?;
        if version == 0 || version > CHECKPOINT_SCHEMA_VERSION {
            return Err(FlareError::Checkpoint(format!(
                "unsupported checkpoint schema version {version} \
                 (this build reads versions 1..={CHECKPOINT_SCHEMA_VERSION})"
            )));
        }
        let seed = u64::decode(r)?;
        let next_round = u32::decode(r)?;
        let total_rounds = u32::decode(r)?;
        let global = BTreeMap::decode(r)?;
        let rounds = Vec::decode(r)?;
        let best_metric = Option::decode(r)?;
        let best_round = Option::decode(r)?;
        // Version-1 checkpoints predate tree aggregation: flat topology.
        let (tree_depth, tree_fanout) = if version >= 2 {
            (u32::decode(r)?, u32::decode(r)?)
        } else {
            (0, 0)
        };
        Ok(RunCheckpoint {
            seed,
            next_round,
            total_rounds,
            global,
            rounds,
            best_metric,
            best_round,
            tree_depth,
            tree_fanout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dxo::WeightTensor;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("clinfl-ckpt-{tag}-{}", std::process::id()))
    }

    fn weights(v: f32) -> Weights {
        let mut w = Weights::new();
        w.insert("p".into(), WeightTensor::new(vec![3], vec![v; 3]));
        w
    }

    fn checkpoint() -> RunCheckpoint {
        RunCheckpoint {
            seed: 2023,
            next_round: 3,
            total_rounds: 5,
            global: weights(1.5),
            rounds: vec![RoundSummary {
                round: 2,
                contributors: vec!["site-1".into(), "site-2".into()],
                client_metrics: {
                    let mut site = BTreeMap::new();
                    site.insert("train_loss".to_string(), 0.5);
                    let mut m = BTreeMap::new();
                    m.insert("site-1".to_string(), site);
                    m
                },
                global_metric: Some(0.75),
                dropped: vec!["site-3".into()],
            }],
            best_metric: Some(0.75),
            best_round: Some(2),
            tree_depth: 2,
            tree_fanout: 4,
        }
    }

    #[test]
    fn v1_checkpoint_decodes_as_flat_topology() {
        // A hand-built version-1 body: same fields minus the tree pair.
        let ckpt = checkpoint();
        let mut body = crate::wire::FRAME_MAGIC.to_vec();
        1u32.encode(&mut body);
        ckpt.seed.encode(&mut body);
        ckpt.next_round.encode(&mut body);
        ckpt.total_rounds.encode(&mut body);
        ckpt.global.encode(&mut body);
        ckpt.rounds.encode(&mut body);
        ckpt.best_metric.encode(&mut body);
        ckpt.best_round.encode(&mut body);
        let decoded = RunCheckpoint::from_frame(&body).unwrap();
        assert_eq!(decoded.tree_depth, 0);
        assert_eq!(decoded.tree_fanout, 0);
        assert_eq!(decoded.global, ckpt.global);
        assert_eq!(decoded.next_round, ckpt.next_round);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn run_checkpoint_roundtrips_through_disk() {
        let path = tmp_path("roundtrip");
        let ckpt = checkpoint();
        ckpt.save(&path).unwrap();
        assert_eq!(RunCheckpoint::load(&path).unwrap(), ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp_path("truncated");
        checkpoint().save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut mid-body: the trailer disappears, so the legacy path tries a
        // plain frame decode, which must fail loudly.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = RunCheckpoint::load(&path).unwrap_err();
        assert!(
            matches!(err, FlareError::Codec(_) | FlareError::Checkpoint(_)),
            "unexpected error {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_fails_crc_with_useful_error() {
        let path = tmp_path("bitflip");
        checkpoint().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = RunCheckpoint::load(&path).unwrap_err();
        assert!(
            err.to_string().contains("CRC mismatch"),
            "error should name the CRC check: {err}"
        );
    }

    #[test]
    fn unknown_schema_version_rejected() {
        let path = tmp_path("schema");
        let mut body = crate::wire::FRAME_MAGIC.to_vec();
        (CHECKPOINT_SCHEMA_VERSION + 1).encode(&mut body);
        atomic_write_with_crc(&path, &body).unwrap();
        let err = RunCheckpoint::load(&path).unwrap_err();
        assert!(
            err.to_string().contains("schema version"),
            "error should name the schema version: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_weights_file_without_trailer_loads() {
        let path = tmp_path("legacy");
        let w = weights(4.0);
        std::fs::write(&path, w.to_frame()).unwrap(); // pre-CRC format
        assert_eq!(load_weights_file(&path).unwrap(), w);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weights_file_roundtrips_and_rejects_corruption() {
        let path = tmp_path("weights");
        let w = weights(2.5);
        save_weights_file(&path, &w).unwrap();
        assert_eq!(load_weights_file(&path).unwrap(), w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_weights_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_write_leaves_no_tmp_and_old_file_intact() {
        let dir = tmp_path("atomic-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cfw");
        save_weights_file(&path, &weights(1.0)).unwrap();
        // Writing into a directory that has vanished must fail cleanly...
        let gone = dir.join("missing-subdir").join("model.cfw");
        assert!(save_weights_file(&gone, &weights(2.0)).is_err());
        // ...while the original file still verifies and no tmp junk exists.
        assert_eq!(load_weights_file(&path).unwrap(), weights(1.0));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
