//! Length-delimited binary codec for all federated messages.
//!
//! No general-purpose binary serde format is available in the offline
//! dependency set, so the protocol is hand-rolled: little-endian integers,
//! length-prefixed strings and sequences, and a magic/version header on
//! every frame. The same bytes flow over the in-process simulator channels
//! and the TCP transport, so the codec is exercised on every test run.

use crate::FlareError;

/// Frame magic: "CF" + protocol version 1.
pub const FRAME_MAGIC: [u8; 3] = [b'C', b'F', 1];

/// Types that can append themselves to a byte buffer.
pub trait WireEncode {
    /// Appends the encoded representation to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh framed buffer (magic + body).
    fn to_frame(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&FRAME_MAGIC);
        self.encode(&mut out);
        out
    }
}

/// Types that can be parsed back out of a [`WireReader`].
pub trait WireDecode: Sized {
    /// Reads one value.
    ///
    /// # Errors
    ///
    /// Returns [`FlareError::Codec`] on truncated or malformed input.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError>;

    /// Convenience: decodes from a framed buffer produced by
    /// [`WireEncode::to_frame`], checking the magic and requiring the
    /// buffer to be fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`FlareError::Codec`] on bad magic, truncation, or trailing
    /// bytes.
    fn from_frame(buf: &[u8]) -> Result<Self, FlareError> {
        if buf.len() < 3 || buf[..3] != FRAME_MAGIC {
            return Err(FlareError::Codec("bad frame magic".into()));
        }
        let mut r = WireReader::new(&buf[3..]);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(FlareError::Codec(format!(
                "{} trailing bytes after message",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

/// Cursor over a received byte buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current cursor position (for [`WireReader::since`]).
    pub fn mark(&self) -> usize {
        self.pos
    }

    /// The bytes consumed since `mark` was taken — used by checksummed
    /// messages (see [`crate::codec`]) to recompute a CRC over exactly
    /// the bytes that were parsed.
    pub fn since(&self, mark: usize) -> &'a [u8] {
        &self.buf[mark..self.pos]
    }

    /// Consumes and returns the next `n` bytes as a slice (bulk variant
    /// of the typed decoders, used for packed byte payloads).
    ///
    /// # Errors
    ///
    /// Returns [`FlareError::Codec`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], FlareError> {
        self.take(n)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FlareError> {
        if self.remaining() < n {
            return Err(FlareError::Codec(format!(
                "needed {n} bytes, only {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

impl WireEncode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl WireDecode for u8 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        Ok(r.take(1)?[0])
    }
}

impl WireEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl WireDecode for bool {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(FlareError::Codec(format!("invalid bool byte {b}"))),
        }
    }
}

macro_rules! impl_le_number {
    ($($t:ty),*) => {$(
        impl WireEncode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl WireDecode for $t {
            fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}
impl_le_number!(u16, u32, u64, i64, f32, f64);

impl WireEncode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl WireDecode for usize {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| FlareError::Codec(format!("usize overflow: {v}")))
    }
}

impl WireEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl WireDecode for String {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        let n = usize::decode(r)?;
        if n > 1 << 24 {
            return Err(FlareError::Codec(format!("string length {n} too large")));
        }
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| FlareError::Codec(format!("invalid utf-8: {e}")))
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for v in self {
            v.encode(out);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        let n = usize::decode(r)?;
        // Defensive bound: each element needs at least one byte.
        if n > r.remaining() {
            return Err(FlareError::Codec(format!(
                "sequence claims {n} elements with {} bytes left",
                r.remaining()
            )));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(FlareError::Codec(format!("invalid Option tag {b}"))),
        }
    }
}

impl<V: WireEncode> WireEncode for std::collections::BTreeMap<String, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
}

impl<V: WireDecode> WireDecode for std::collections::BTreeMap<String, V> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        let n = usize::decode(r)?;
        if n > r.remaining() {
            return Err(FlareError::Codec(format!(
                "map claims {n} entries with {} bytes left",
                r.remaining()
            )));
        }
        let mut m = std::collections::BTreeMap::new();
        for _ in 0..n {
            let k = String::decode(r)?;
            let v = V::decode(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

// Vec<f32> gets a fast-path bulk encoding through the generic impl above;
// the per-element overhead is just the 4-byte copies, which is fine.

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: T) {
        let frame = v.to_frame();
        let back = T::from_frame(&frame).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(true);
        roundtrip(false);
        roundtrip(0u16);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(3.5f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(1234usize);
        roundtrip(String::from("hello 漢字"));
        roundtrip(String::new());
    }

    #[test]
    fn vec_and_map_roundtrips() {
        roundtrip(vec![1.0f32, -2.0, 3.25]);
        roundtrip(Vec::<f32>::new());
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        m.insert("b".to_string(), -0.25);
        roundtrip(m);
    }

    #[test]
    fn option_roundtrips() {
        roundtrip(Some(0.75f64));
        roundtrip(None::<f64>);
        roundtrip(Some(String::from("best")));
        roundtrip(Some(vec![1u32, 2, 3]));
    }

    #[test]
    fn invalid_option_tag_rejected() {
        let mut frame = FRAME_MAGIC.to_vec();
        frame.push(2);
        frame.extend_from_slice(&1.0f64.to_le_bytes());
        assert!(Option::<f64>::from_frame(&frame).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = u32::from_frame(&[0, 0, 0, 1, 2, 3, 4]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncation_rejected() {
        let frame = 12345u32.to_frame();
        assert!(u32::from_frame(&frame[..frame.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = 7u32.to_frame();
        frame.push(9);
        assert!(u32::from_frame(&frame).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut frame = FRAME_MAGIC.to_vec();
        frame.push(7);
        assert!(bool::from_frame(&frame).is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        // A sequence claiming u64::MAX elements must fail fast, not OOM.
        let mut frame = FRAME_MAGIC.to_vec();
        u64::MAX.encode(&mut frame);
        assert!(Vec::<f32>::from_frame(&frame).is_err());
    }
}
