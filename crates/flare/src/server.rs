//! The federated server: client management and the gateway the
//! ScatterAndGather controller drives.

use crate::codec::{
    decode_weights, raw_submit_frame_size, raw_task_frame_size, wire_count, CodecSpec,
    DownlinkKind, GlobalRing, NO_BASE, SUPPORTED_CODECS,
};
use crate::controller::ClientGateway;
use crate::dxo::{Dxo, DxoKind};
use crate::log::EventLog;
use crate::messages::{ClientMessage, ServerMessage, TaskAssignment};
use crate::provision::ServerConfig;
use crate::security::{DhKeyPair, SecureChannel};
use crate::transport::Connection;
use crate::wire::{WireDecode, WireEncode};
use crate::FlareError;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Nonce base for server→client frames (client→server uses 0).
const SERVER_NONCE_BASE: u64 = 1 << 32;

struct ClientSlot {
    site: String,
    session: String,
    /// `None` once the server has released the connection (see
    /// [`FlServer::disconnect_all`]).
    tx: Option<Box<dyn crate::transport::FrameTx>>,
    seal: SecureChannel,
    alive: bool,
    /// Last time any frame (task reply, heartbeat, even a corrupt one)
    /// arrived from this site.
    last_seen: Instant,
    /// Wire codec negotiated with this client (`None` = raw peer).
    codec: Option<CodecSpec>,
    /// True once the client has announced its codec choice (including an
    /// explicit `raw`). Old peers never announce and stay `false`; the
    /// pre-round settle in [`FlServer::wait_for_clients`] uses this to
    /// avoid broadcasting full-f32 frames to clients whose proposal is
    /// still in flight.
    codec_decided: bool,
    /// Most recent downlink payload id this client acknowledged — the
    /// delta base for its next encoded downlink.
    acked: Option<u32>,
}

/// Quorum knobs for the gather phase (see [`FlServer::set_quorum`]).
#[derive(Clone, Copy, Debug)]
struct QuorumPolicy {
    min_clients: usize,
    grace: Option<Duration>,
}

/// The federated-learning server (NVFlare's `ServerRunner`/`ClientManager`
/// pair): accepts registrations, maintains encrypted sessions, and exposes
/// the [`ClientGateway`] interface to the workflow controller.
pub struct FlServer {
    config: ServerConfig,
    log: EventLog,
    slots: Arc<Mutex<Vec<ClientSlot>>>,
    inbox_tx: mpsc::Sender<(usize, ClientMessage)>,
    inbox_rx: mpsc::Receiver<(usize, ClientMessage)>,
    handler_threads: Vec<JoinHandle<()>>,
    stopping: Arc<AtomicBool>,
    rng: StdRng,
    quorum: QuorumPolicy,
    /// Ring of recent global payloads + canonical per-codec chains.
    /// Session-scoped: a resumed run starts fresh, forcing one
    /// self-contained downlink per client (DESIGN.md §3g).
    ring: Arc<Mutex<GlobalRing>>,
    /// When false the server ignores codec proposals entirely, emulating
    /// a peer that predates the codec layer (clients then fall back to
    /// raw; used by compatibility tests).
    codecs_enabled: bool,
}

impl std::fmt::Debug for FlServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlServer")
            .field("project", &self.config.project)
            .field("clients", &self.slots.lock().len())
            .finish_non_exhaustive()
    }
}

impl FlServer {
    /// Creates a server for a provisioned project.
    pub fn new(config: ServerConfig, log: EventLog, seed: u64) -> Self {
        let (inbox_tx, inbox_rx) = mpsc::channel();
        FlServer {
            config,
            log,
            slots: Arc::new(Mutex::new(Vec::new())),
            inbox_tx,
            inbox_rx,
            handler_threads: Vec::new(),
            stopping: Arc::new(AtomicBool::new(false)),
            rng: StdRng::seed_from_u64(seed),
            quorum: QuorumPolicy {
                min_clients: usize::MAX,
                grace: None,
            },
            ring: Arc::new(Mutex::new(GlobalRing::default())),
            codecs_enabled: true,
        }
    }

    /// Enables or disables wire-codec negotiation (default enabled).
    /// Disabling makes the server behave like a pre-codec peer: codec
    /// proposals are ignored and every downlink ships raw f32.
    pub fn set_wire_codecs_enabled(&mut self, enabled: bool) {
        self.codecs_enabled = enabled;
    }

    /// Number of registered (ever-joined) clients.
    pub fn num_registered(&self) -> usize {
        self.slots.lock().len()
    }

    /// Configures the gather-phase quorum: once at least `min_clients`
    /// submissions have arrived for a round and no further submission has
    /// been accepted for `grace`, the round closes early instead of
    /// waiting out the full round timeout. `grace: None` keeps the
    /// original wait-for-all behavior.
    pub fn set_quorum(&mut self, min_clients: usize, grace: Option<Duration>) {
        self.quorum = QuorumPolicy {
            min_clients: min_clients.max(1),
            grace,
        };
    }

    /// Accepts one connection: performs the token/key handshake on a
    /// handler thread, then forwards decrypted client messages into the
    /// server inbox.
    pub fn serve_connection(&mut self, mut conn: Connection) {
        let config = self.config.clone();
        let log = self.log.clone();
        let slots = Arc::clone(&self.slots);
        let inbox = self.inbox_tx.clone();
        let stopping = Arc::clone(&self.stopping);
        let ring = Arc::clone(&self.ring);
        let codecs_enabled = self.codecs_enabled;
        let dh_secret: u64 = self.rng.random();
        let session_bits: (u64, u64) = (self.rng.random(), self.rng.random());
        let handle = std::thread::spawn(move || {
            // --- Handshake (plaintext, like NVFlare's join) ---
            let frame = match conn.rx.recv(Duration::from_secs(30)) {
                Ok(f) => f,
                Err(e) => {
                    log.warn(
                        "ClientManager",
                        format!("connection dropped pre-register: {e}"),
                    );
                    return;
                }
            };
            let msg = match ClientMessage::from_frame(&frame) {
                Ok(m) => m,
                Err(e) => {
                    log.warn("ClientManager", format!("bad register frame: {e}"));
                    return;
                }
            };
            let ClientMessage::Register {
                site,
                token,
                dh_public,
            } = msg
            else {
                log.warn("ClientManager", "first frame was not Register");
                return;
            };
            let accepted = config.verify(&site, &token)
                && !slots.lock().iter().any(|s| s.site == site && s.alive);
            let keys = DhKeyPair::from_secret(dh_secret);
            // UUID-shaped session token, as in the paper's Fig. 3 log.
            let (hi, lo) = session_bits;
            let session_str = format!(
                "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
                (hi >> 32) as u32,
                (hi >> 16) & 0xffff,
                hi & 0xffff,
                (lo >> 48) & 0xffff,
                lo & 0xffff_ffff_ffff
            );
            let ack = ServerMessage::RegisterAck {
                accepted,
                session: session_str.clone(),
                dh_public: keys.public,
            };
            if conn.tx.send(&ack.to_frame()).is_err() || !accepted {
                if !accepted {
                    log.warn(
                        "ClientManager",
                        format!("Client {site} rejected: invalid token or duplicate"),
                    );
                }
                return;
            }
            let key = keys.shared_key(dh_public);
            let slot_idx = {
                let mut guard = slots.lock();
                guard.push(ClientSlot {
                    site: site.clone(),
                    session: session_str.clone(),
                    tx: Some(conn.tx),
                    seal: SecureChannel::new(key, SERVER_NONCE_BASE),
                    alive: true,
                    last_seen: Instant::now(),
                    codec: None,
                    codec_decided: false,
                    acked: None,
                });
                guard.len() - 1
            };
            log.info(
                "ClientManager",
                format!(
                    "Client: New client {site}@127.0.0.1 joined. Sent token: {session_str}. Total clients: {}",
                    slot_idx + 1
                ),
            );
            log.info(
                "FederatedClient",
                format!(
                    "Successfully registered client:{site} for project {}. Token:{session_str}",
                    config.project
                ),
            );

            // --- Session loop: decrypt and forward ---
            // Receive in short slices so the handler notices server
            // shutdown promptly even while a quiet client stays connected.
            let open = SecureChannel::new(key, 0);
            loop {
                if stopping.load(Ordering::Relaxed) {
                    return;
                }
                match conn.rx.recv(Duration::from_millis(200)) {
                    Ok(frame) => {
                        clinfl_obs::add_counter("flare.server.bytes_rx", frame.len() as u64);
                        slots.lock()[slot_idx].last_seen = Instant::now();
                        let plain = match open.open(&frame) {
                            Ok(p) => p,
                            Err(e) => {
                                log.warn("ClientManager", format!("{site}: rejected frame: {e}"));
                                continue;
                            }
                        };
                        match ClientMessage::from_frame(&plain) {
                            Ok(ClientMessage::Bye { .. }) => {
                                slots.lock()[slot_idx].alive = false;
                                log.info("ClientManager", format!("{site} disconnected."));
                                return;
                            }
                            Ok(ClientMessage::Heartbeat { .. }) => {
                                // Liveness refresh only; not workflow traffic.
                                log.info("ClientManager", format!("{site}: heartbeat received"));
                            }
                            Ok(ClientMessage::CodecPropose { specs, .. }) => {
                                if !codecs_enabled {
                                    // A pre-codec server would not know this
                                    // tag; stay silent so the client falls
                                    // back to raw.
                                    log.warn(
                                        "ClientManager",
                                        format!(
                                            "{site}: ignoring codec proposal (codecs disabled)"
                                        ),
                                    );
                                    continue;
                                }
                                let chosen = specs.iter().find_map(|s| CodecSpec::parse(s).ok());
                                let reply = ServerMessage::CodecAck {
                                    chosen: chosen.as_ref().map(|c| c.to_string()),
                                    supported: SUPPORTED_CODECS
                                        .iter()
                                        .map(|s| (*s).to_string())
                                        .collect(),
                                };
                                let mut guard = slots.lock();
                                let slot = &mut guard[slot_idx];
                                slot.codec = chosen.filter(|c| !c.is_raw());
                                slot.codec_decided = true;
                                if let Some(c) = &slot.codec {
                                    log.info(
                                        "ClientManager",
                                        format!("{site}: negotiated wire codec {c}"),
                                    );
                                }
                                FlServer::send_to_slot(slot, &reply, &log);
                            }
                            Ok(ClientMessage::SubmitEnc {
                                round,
                                ack,
                                n_examples,
                                metrics,
                                enc,
                            }) => {
                                let spec = {
                                    let mut guard = slots.lock();
                                    let slot = &mut guard[slot_idx];
                                    if ack != NO_BASE {
                                        slot.acked = Some(ack);
                                    }
                                    slot.codec.clone()
                                };
                                let decoded = {
                                    let ring = ring.lock();
                                    let base = if enc.base_id == NO_BASE {
                                        None
                                    } else {
                                        spec.as_ref().and_then(|sp| ring.recon(sp, enc.base_id))
                                    };
                                    if enc.base_id != NO_BASE && base.is_none() {
                                        wire_count("flare.wire.codec.base_misses", 1);
                                        Err(FlareError::Codec(format!(
                                            "uplink base payload {} unknown",
                                            enc.base_id
                                        )))
                                    } else {
                                        decode_weights(&enc, base)
                                    }
                                };
                                match decoded {
                                    Ok(weights) => {
                                        wire_count(
                                            "flare.wire.bytes_rx_encoded",
                                            plain.len() as u64,
                                        );
                                        wire_count(
                                            "flare.wire.bytes_rx_raw",
                                            raw_submit_frame_size(&weights, &metrics),
                                        );
                                        let dxo = Dxo {
                                            kind: DxoKind::Weights,
                                            weights,
                                            metrics,
                                            n_examples,
                                        };
                                        if inbox
                                            .send((slot_idx, ClientMessage::Submit { round, dxo }))
                                            .is_err()
                                        {
                                            return; // server gone
                                        }
                                    }
                                    Err(e) => {
                                        wire_count("flare.wire.codec.decode_errors", 1);
                                        log.warn(
                                            "ClientManager",
                                            format!(
                                                "{site}: dropping undecodable round-{round} submission: {e}"
                                            ),
                                        );
                                    }
                                }
                            }
                            Ok(ClientMessage::ValidateReportEnc { round, metric, ack }) => {
                                if ack != NO_BASE {
                                    slots.lock()[slot_idx].acked = Some(ack);
                                }
                                let fwd = ClientMessage::ValidateReport { round, metric };
                                if inbox.send((slot_idx, fwd)).is_err() {
                                    return; // server gone
                                }
                            }
                            Ok(msg) => {
                                if let ClientMessage::Submit { .. } = &msg {
                                    // Raw submissions: raw and encoded wire
                                    // bytes are the same by definition.
                                    wire_count("flare.wire.bytes_rx_encoded", plain.len() as u64);
                                    wire_count("flare.wire.bytes_rx_raw", plain.len() as u64);
                                }
                                if inbox.send((slot_idx, msg)).is_err() {
                                    return; // server gone
                                }
                            }
                            Err(e) => {
                                log.warn("ClientManager", format!("{site}: bad message: {e}"))
                            }
                        }
                    }
                    Err(FlareError::Timeout) => continue,
                    Err(e) => {
                        slots.lock()[slot_idx].alive = false;
                        log.warn("ClientManager", format!("{site} connection lost: {e}"));
                        return;
                    }
                }
            }
        });
        self.handler_threads.push(handle);
    }

    /// Blocks until `n` clients have registered or `timeout` passes.
    /// Returns the registered count.
    ///
    /// With codecs enabled, a short settle window follows: codec
    /// proposals ride a separate message right after registration, so
    /// broadcasting immediately would race them and ship full-f32 frames
    /// to clients that were about to negotiate. The settle waits up to
    /// 150 ms for every registered client to announce a codec choice —
    /// extended to 1 s once at least one announcement has arrived
    /// (evidence of a negotiating fleet whose remaining proposals may
    /// have been lost to link faults). Old peers never announce, so an
    /// all-legacy fleet pays at most the 150 ms floor.
    pub fn wait_for_clients(&self, n: usize, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let count = loop {
            let count = self.slots.lock().len();
            if count >= n || Instant::now() >= deadline {
                break count;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        if !self.codecs_enabled {
            return count;
        }
        let settle = Instant::now() + Duration::from_millis(150);
        let grace = Instant::now() + Duration::from_secs(1);
        loop {
            let (decided, total) = {
                let guard = self.slots.lock();
                (
                    guard.iter().filter(|s| s.codec_decided).count(),
                    guard.len(),
                )
            };
            if decided >= total {
                break;
            }
            let limit = if decided > 0 { grace } else { settle };
            if Instant::now() >= limit {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.slots.lock().len()
    }

    /// Signals handler threads to stop and waits for them. Idempotent;
    /// safe to call while clients are still connected (their sessions are
    /// abandoned server-side).
    pub fn shutdown(&mut self) {
        self.stopping.store(true, Ordering::Relaxed);
        for h in self.handler_threads.drain(..) {
            let _ = h.join();
        }
    }

    /// Releases every client connection's sending half and marks the
    /// slots dead. For in-process transports this closes the channel, so
    /// a client blocked in `recv` wakes with a disconnect instead of
    /// waiting out its full timeout — the simulator calls this after
    /// [`FlServer::shutdown`] so a fault-dropped `Finish` frame cannot
    /// strand its client. Slots stay in the table (indices are stable)
    /// and remain visible to [`FlServer::sessions`].
    pub fn disconnect_all(&mut self) {
        for slot in self.slots.lock().iter_mut() {
            slot.tx = None;
            slot.alive = false;
        }
    }

    /// Liveness snapshot: `(site, idle-for, alive)` per registered client,
    /// in registration order. `idle-for` is the time since the last frame
    /// (including heartbeats) arrived from that site.
    pub fn liveness(&self) -> Vec<(String, Duration, bool)> {
        self.slots
            .lock()
            .iter()
            .map(|s| (s.site.clone(), s.last_seen.elapsed(), s.alive))
            .collect()
    }

    /// Sites still marked alive whose last frame is older than `max_idle`
    /// — candidates for being declared dead by an operator.
    pub fn stale_sites(&self, max_idle: Duration) -> Vec<String> {
        self.slots
            .lock()
            .iter()
            .filter(|s| s.alive && s.last_seen.elapsed() > max_idle)
            .map(|s| s.site.clone())
            .collect()
    }

    fn send_to_slot(slot: &mut ClientSlot, msg: &ServerMessage, log: &EventLog) -> bool {
        Self::send_frame_to_slot(slot, &msg.to_frame(), log)
    }

    fn send_frame_to_slot(slot: &mut ClientSlot, plain: &[u8], log: &EventLog) -> bool {
        let sealed = slot.seal.seal(plain);
        let Some(tx) = slot.tx.as_mut() else {
            return false;
        };
        match tx.send(&sealed) {
            Ok(()) => {
                clinfl_obs::add_counter("flare.server.bytes_tx", sealed.len() as u64);
                true
            }
            Err(e) => {
                slot.alive = false;
                log.warn("ServerRunner", format!("{}: send failed: {e}", slot.site));
                false
            }
        }
    }

    /// How long the next inbox wait may run: bounded by the round
    /// deadline, and — once the quorum is met — by the remaining grace
    /// since the last accepted submission. `None` means stop waiting.
    fn gather_wait(
        &self,
        got: usize,
        deadline: Instant,
        last_progress: Instant,
    ) -> Option<Duration> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return None;
        }
        if got >= self.quorum.min_clients {
            if let Some(grace) = self.quorum.grace {
                let grace_left = grace.saturating_sub(last_progress.elapsed());
                if grace_left.is_zero() {
                    return None;
                }
                return Some(remaining.min(grace_left));
            }
        }
        Some(remaining)
    }
}

impl ClientGateway for FlServer {
    fn client_sites(&self) -> Vec<String> {
        self.slots
            .lock()
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.site.clone())
            .collect()
    }

    fn broadcast(&mut self, task: &TaskAssignment) -> usize {
        // Weight-bearing tasks go through the wire codec per slot; Finish
        // (and any task for a raw peer) ships in the legacy format.
        let (weights, is_train) = match task {
            TaskAssignment::Train { weights, .. } => (Some(weights), true),
            TaskAssignment::Validate { weights, .. } => (Some(weights), false),
            _ => (None, false),
        };
        let raw_frame = ServerMessage::Task(task.clone()).to_frame();
        let mut sent = 0;
        // Lock order: slots, then ring (matches the session threads,
        // which never hold both at once).
        let mut slots = self.slots.lock();
        let any_codec = weights.is_some()
            && self.codecs_enabled
            && slots.iter().any(|s| s.alive && s.codec.is_some());
        if !any_codec {
            for slot in slots.iter_mut().filter(|s| s.alive) {
                if Self::send_frame_to_slot(slot, &raw_frame, &self.log) {
                    if weights.is_some() {
                        wire_count("flare.wire.bytes_tx_encoded", raw_frame.len() as u64);
                        wire_count("flare.wire.bytes_tx_raw", raw_frame.len() as u64);
                    }
                    sent += 1;
                }
            }
            return sent;
        }
        let weights = weights.expect("any_codec implies weight-bearing task");
        let raw_size = raw_task_frame_size(weights, is_train);
        let mut ring = self.ring.lock();
        let id = ring.publish(weights);
        // Group the round's receivers by spec so the ring can downgrade
        // a spec's entry to a self-contained head when any of its clients
        // would otherwise need an expensive exact full / catch-up frame.
        let mut by_spec: BTreeMap<String, (CodecSpec, Vec<Option<u32>>)> = BTreeMap::new();
        for slot in slots.iter().filter(|s| s.alive) {
            if let Some(spec) = &slot.codec {
                by_spec
                    .entry(spec.to_string())
                    .or_insert_with(|| (spec.clone(), Vec::new()))
                    .1
                    .push(slot.acked);
            }
        }
        for (spec, acks) in by_spec.values() {
            ring.prepare_round(spec, acks, id);
        }
        for slot in slots.iter_mut().filter(|s| s.alive) {
            let encoded = slot.codec.as_ref().and_then(|spec| {
                let (enc, kind) = ring.encode_for(spec, slot.acked, id)?;
                wire_count(
                    match kind {
                        DownlinkKind::Full => "flare.wire.codec.full_frames",
                        DownlinkKind::Delta => "flare.wire.codec.delta_frames",
                        DownlinkKind::Alias => "flare.wire.codec.alias_frames",
                        DownlinkKind::CatchUp => "flare.wire.codec.catchup_frames",
                    },
                    1,
                );
                let t = if is_train {
                    let TaskAssignment::Train {
                        round,
                        total_rounds,
                        ..
                    } = task
                    else {
                        unreachable!()
                    };
                    TaskAssignment::TrainEnc {
                        round: *round,
                        total_rounds: *total_rounds,
                        enc,
                    }
                } else {
                    let TaskAssignment::Validate { round, .. } = task else {
                        unreachable!()
                    };
                    TaskAssignment::ValidateEnc { round: *round, enc }
                };
                Some(ServerMessage::Task(t).to_frame())
            });
            let (frame, raw_equiv) = match &encoded {
                Some(f) => (f.as_slice(), raw_size),
                None => (raw_frame.as_slice(), raw_frame.len() as u64),
            };
            if Self::send_frame_to_slot(slot, frame, &self.log) {
                wire_count("flare.wire.bytes_tx_encoded", frame.len() as u64);
                wire_count("flare.wire.bytes_tx_raw", raw_equiv);
                sent += 1;
            }
        }
        sent
    }

    fn collect_submissions(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
    ) -> Vec<(String, Dxo)> {
        let deadline = Instant::now() + timeout;
        let mut last_progress = Instant::now();
        let mut out: Vec<(String, Dxo)> = Vec::new();
        while out.len() < expected {
            let Some(wait) = self.gather_wait(out.len(), deadline, last_progress) else {
                break;
            };
            match self.inbox_rx.recv_timeout(wait) {
                Ok((slot, ClientMessage::Submit { round: r, dxo })) if r == round => {
                    let site = self.slots.lock()[slot].site.clone();
                    if out.iter().any(|(s, _)| *s == site) {
                        self.log
                            .warn("ServerRunner", format!("duplicate submit from {site}"));
                        continue;
                    }
                    out.push((site, dxo));
                    last_progress = Instant::now();
                }
                Ok((slot, msg)) => {
                    let site = self.slots.lock()[slot].site.clone();
                    self.log.warn(
                        "ServerRunner",
                        format!("{site}: out-of-phase message during round {round}: {msg:?}"),
                    );
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Re-evaluate the deadline/grace budget at the top.
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        out
    }

    fn collect_validations(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
    ) -> Vec<(String, f64)> {
        let deadline = Instant::now() + timeout;
        let mut last_progress = Instant::now();
        let mut out: Vec<(String, f64)> = Vec::new();
        while out.len() < expected {
            let Some(wait) = self.gather_wait(out.len(), deadline, last_progress) else {
                break;
            };
            match self.inbox_rx.recv_timeout(wait) {
                Ok((slot, ClientMessage::ValidateReport { round: r, metric })) if r == round => {
                    let site = self.slots.lock()[slot].site.clone();
                    if !out.iter().any(|(s, _)| *s == site) {
                        out.push((site, metric));
                        last_progress = Instant::now();
                    }
                }
                Ok(_) => {} // stale submit etc.
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        out
    }
}

/// Read access to per-session metadata for demos and tests.
impl FlServer {
    /// `(site, session-token)` pairs in registration order.
    pub fn sessions(&self) -> Vec<(String, String)> {
        self.slots
            .lock()
            .iter()
            .map(|s| (s.site.clone(), s.session.clone()))
            .collect()
    }
}
