//! The federated server: client management and the gateway the
//! ScatterAndGather controller drives.
//!
//! Since the event-driven rewrite (DESIGN.md §3h) the server runs ONE
//! reactor thread regardless of fleet size: every session is a mailbox
//! ([`crate::reactor::FrameQueue`]) that marks its token ready on a shared
//! [`crate::reactor::ReadyQueue`], and the reactor drains ready mailboxes,
//! advancing each session's handshake/established state machine in place.
//! In-process peers attach reactor-natively via [`FlServer::serve_session`]
//! (zero threads per client); socket peers attach via
//! [`FlServer::serve_connection`], which spawns only a thin pump thread
//! that copies frames from the socket into the mailbox. Registration and
//! codec settling block on a versioned [`crate::reactor::Signal`] instead
//! of the old 5 ms sleep-polls.
//!
//! The server also understands interior aggregation-tree nodes
//! ([`crate::relay::AggregatorNode`]): a client that announces leaves and
//! submits pre-aggregated shards is expanded back into per-leaf
//! bookkeeping ([`crate::controller::RoundManifest`]) so quorum, drop
//! accounting, and round summaries stay leaf-granular.

use crate::codec::{
    decode_weights, raw_submit_frame_size, raw_task_frame_size, wire_count, CodecSpec,
    DownlinkKind, GlobalRing, NO_BASE, SUPPORTED_CODECS,
};
use crate::controller::{ClientGateway, RoundManifest, ShardMeta};
use crate::dxo::{Dxo, DxoKind};
use crate::log::EventLog;
use crate::messages::{ClientMessage, ServerMessage, ShardPayload, TaskAssignment};
use crate::provision::ServerConfig;
use crate::reactor::{FrameQueue, QueueRx, QueueTx, ReadyQueue, Signal};
use crate::security::{DhKeyPair, SecureChannel};
use crate::transport::Connection;
use crate::wire::{WireDecode, WireEncode};
use crate::FlareError;
use clinfl_obs::Registry;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Nonce base for server→client frames (client→server uses 0).
const SERVER_NONCE_BASE: u64 = 1 << 32;

/// How many recent rounds of leaf manifests to retain for
/// [`ClientGateway::round_manifest`] queries.
const MANIFEST_RETENTION: usize = 4;

struct ClientSlot {
    site: String,
    session: String,
    /// `None` once the server has released the connection (see
    /// [`FlServer::disconnect_all`]).
    tx: Option<Box<dyn crate::transport::FrameTx>>,
    seal: SecureChannel,
    alive: bool,
    /// Last time any frame (task reply, heartbeat, even a corrupt one)
    /// arrived from this site.
    last_seen: Instant,
    /// Wire codec negotiated with this client (`None` = raw peer).
    codec: Option<CodecSpec>,
    /// True once the client has announced its codec choice (including an
    /// explicit `raw`). Old peers never announce and stay `false`; the
    /// pre-round settle in [`FlServer::wait_for_clients`] uses this to
    /// avoid broadcasting full-f32 frames to clients whose proposal is
    /// still in flight.
    codec_decided: bool,
    /// Most recent downlink payload id this client acknowledged — the
    /// delta base for its next encoded downlink.
    acked: Option<u32>,
    /// Leaf sites announced by an interior tree node, or `None` for an
    /// ordinary leaf client.
    leaves: Option<Vec<String>>,
}

/// Quorum knobs for the gather phase (see [`FlServer::set_quorum`]).
#[derive(Clone, Copy, Debug)]
struct QuorumPolicy {
    min_clients: usize,
    grace: Option<Duration>,
}

/// Where a session is in its lifecycle; advanced only by the reactor
/// thread.
enum SessionPhase {
    /// Waiting for the plaintext `Register` frame. The send half lives
    /// here until registration moves it into the client slot.
    AwaitRegister {
        tx: Option<Box<dyn crate::transport::FrameTx>>,
        dh_secret: u64,
        session_bits: (u64, u64),
    },
    /// Registered: frames are sealed; `open` decrypts client→server.
    Established {
        slot: usize,
        open: SecureChannel,
        site: String,
    },
    /// Placeholder while the reactor processes a frame with the real
    /// phase taken out of the cell. Observers (socket pumps checking for
    /// closure) must treat this as live — never as `Closed`.
    Busy,
    /// Session over (Bye, rejection, connection loss, or shutdown).
    Closed,
}

/// One session: its inbound mailbox plus lifecycle state.
struct SessionCell {
    rx: Arc<FrameQueue>,
    phase: SessionPhase,
}

/// Decrypted, decoded workflow traffic the reactor forwards to the
/// controller-facing gather loops.
#[derive(Debug)]
enum InboxMsg {
    /// A round-`round` model update from the client in `slot`; `shard`
    /// carries leaf bookkeeping when the update is a tree-node partial.
    Submit {
        slot: usize,
        round: u32,
        dxo: Dxo,
        shard: Option<ShardMeta>,
    },
    /// Validation metrics — one `(leaf, metric)` pair per leaf below the
    /// client in `slot` (exactly one for an ordinary leaf client).
    Validate {
        slot: usize,
        round: u32,
        reports: Vec<(String, f64)>,
    },
}

/// State shared between the [`FlServer`] handle, the reactor thread, and
/// any socket pump threads.
struct ServerShared {
    config: ServerConfig,
    log: EventLog,
    slots: Mutex<Vec<ClientSlot>>,
    sessions: Mutex<Vec<SessionCell>>,
    ready: Arc<ReadyQueue>,
    stopping: AtomicBool,
    codecs_enabled: AtomicBool,
    /// Ring of recent global payloads + canonical per-codec chains.
    /// Session-scoped: a resumed run starts fresh, forcing one
    /// self-contained downlink per client (DESIGN.md §3g).
    ring: Mutex<GlobalRing>,
    /// Bumped on every registration / codec decision / liveness change;
    /// [`FlServer::wait_for_clients`] blocks on it.
    reg: Signal,
    /// Metric namespace (`flare.server` by default; interior tree nodes
    /// use `flare.tree` so root and relay traffic stay distinguishable).
    ns: Mutex<String>,
    /// Registry scope this server's metrics record into (the global
    /// scope by default; the job runtime hands each job's server its own
    /// so concurrent jobs cannot contaminate each other's snapshots).
    obs: Mutex<Registry>,
    open_sessions: AtomicUsize,
    peak_sessions: AtomicUsize,
}

impl ServerShared {
    fn metric(&self, suffix: &str) -> String {
        format!("{}.{suffix}", self.ns.lock())
    }

    fn obs(&self) -> Registry {
        self.obs.lock().clone()
    }

    fn inc_open(&self) {
        let cur = self.open_sessions.fetch_add(1, Ordering::SeqCst) + 1;
        let peak = self.peak_sessions.fetch_max(cur, Ordering::SeqCst).max(cur);
        self.obs()
            .gauge(&self.metric("sessions_peak"))
            .set_max(peak as i64);
    }

    fn dec_open(&self) {
        self.open_sessions.fetch_sub(1, Ordering::SeqCst);
    }

    fn session_is_closed(&self, token: usize) -> bool {
        matches!(self.sessions.lock()[token].phase, SessionPhase::Closed)
    }

    /// Handles one inbound frame for `token`. The phase is taken out of
    /// the cell while processing (only the reactor mutates phases), so no
    /// lock is held across slot/ring work.
    fn on_frame(&self, token: usize, frame: &[u8], inbox: &mpsc::Sender<InboxMsg>) {
        let started = clinfl_obs::thread_time_ns();
        let phase = {
            let mut sessions = self.sessions.lock();
            std::mem::replace(&mut sessions[token].phase, SessionPhase::Busy)
        };
        let next = match phase {
            SessionPhase::Closed | SessionPhase::Busy => SessionPhase::Closed,
            SessionPhase::AwaitRegister {
                tx,
                dh_secret,
                session_bits,
            } => self.on_register(frame, tx, dh_secret, session_bits),
            SessionPhase::Established { slot, open, site } => {
                self.on_established(frame, slot, open, site, inbox)
            }
        };
        let closed = matches!(next, SessionPhase::Closed);
        {
            let mut sessions = self.sessions.lock();
            sessions[token].phase = next;
            if closed {
                sessions[token].rx.close();
            }
        }
        if closed {
            self.dec_open();
            self.reg.bump();
        }
        // Root-attributable work, in reactor-thread CPU time (wall time
        // would charge the root for scheduler preemption on oversubscribed
        // hosts): with tree aggregation the root handles O(fanout) frames
        // per round instead of O(n), and the scaling bench gates on this.
        self.obs().add_counter(
            &self.metric("frame_work_ns"),
            clinfl_obs::thread_time_ns().saturating_sub(started),
        );
    }

    /// The session's mailbox closed: the peer hung up (or the pump died).
    fn on_session_closed(&self, token: usize) {
        let phase = {
            let mut sessions = self.sessions.lock();
            std::mem::replace(&mut sessions[token].phase, SessionPhase::Closed)
        };
        let stopping = self.stopping.load(Ordering::Relaxed);
        match phase {
            // Already accounted for (Busy cannot occur here: only the
            // reactor thread reaches this, and it never interleaves).
            SessionPhase::Closed | SessionPhase::Busy => return,
            SessionPhase::AwaitRegister { .. } => {
                if !stopping {
                    self.log.warn(
                        "ClientManager",
                        "connection dropped pre-register: in-proc peer disconnected",
                    );
                }
            }
            SessionPhase::Established { slot, site, .. } => {
                let mut slots = self.slots.lock();
                if slots[slot].alive {
                    slots[slot].alive = false;
                    if !stopping {
                        self.log.warn(
                            "ClientManager",
                            format!("{site} connection lost: in-proc peer disconnected"),
                        );
                    }
                }
            }
        }
        self.dec_open();
        self.reg.bump();
    }

    /// Plaintext handshake, exactly NVFlare's join flow.
    fn on_register(
        &self,
        frame: &[u8],
        mut tx: Option<Box<dyn crate::transport::FrameTx>>,
        dh_secret: u64,
        session_bits: (u64, u64),
    ) -> SessionPhase {
        let msg = match ClientMessage::from_frame(frame) {
            Ok(m) => m,
            Err(e) => {
                self.log
                    .warn("ClientManager", format!("bad register frame: {e}"));
                return SessionPhase::Closed;
            }
        };
        let ClientMessage::Register {
            site,
            token,
            dh_public,
        } = msg
        else {
            self.log
                .warn("ClientManager", "first frame was not Register");
            return SessionPhase::Closed;
        };
        let accepted = self.config.verify(&site, &token)
            && !self.slots.lock().iter().any(|s| s.site == site && s.alive);
        let keys = DhKeyPair::from_secret(dh_secret);
        // UUID-shaped session token, as in the paper's Fig. 3 log.
        let (hi, lo) = session_bits;
        let session_str = format!(
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (hi >> 32) as u32,
            (hi >> 16) & 0xffff,
            hi & 0xffff,
            (lo >> 48) & 0xffff,
            lo & 0xffff_ffff_ffff
        );
        let ack = ServerMessage::RegisterAck {
            accepted,
            session: session_str.clone(),
            dh_public: keys.public,
        };
        let sent = tx
            .as_mut()
            .map(|t| t.send(&ack.to_frame()).is_ok())
            .unwrap_or(false);
        if !sent || !accepted {
            if !accepted {
                self.log.warn(
                    "ClientManager",
                    format!("Client {site} rejected: invalid token or duplicate"),
                );
            }
            return SessionPhase::Closed;
        }
        let key = keys.shared_key(dh_public);
        let slot_idx = {
            let mut guard = self.slots.lock();
            guard.push(ClientSlot {
                site: site.clone(),
                session: session_str.clone(),
                tx,
                seal: SecureChannel::new(key, SERVER_NONCE_BASE),
                alive: true,
                last_seen: Instant::now(),
                codec: None,
                codec_decided: false,
                acked: None,
                leaves: None,
            });
            guard.len() - 1
        };
        self.log.info(
            "ClientManager",
            format!(
                "Client: New client {site}@127.0.0.1 joined. Sent token: {session_str}. Total clients: {}",
                slot_idx + 1
            ),
        );
        self.log.info(
            "FederatedClient",
            format!(
                "Successfully registered client:{site} for project {}. Token:{session_str}",
                self.config.project
            ),
        );
        self.reg.bump();
        SessionPhase::Established {
            slot: slot_idx,
            open: SecureChannel::new(key, 0),
            site,
        }
    }

    /// One sealed frame on an established session: decrypt and dispatch.
    fn on_established(
        &self,
        frame: &[u8],
        slot_idx: usize,
        open: SecureChannel,
        site: String,
        inbox: &mpsc::Sender<InboxMsg>,
    ) -> SessionPhase {
        self.obs()
            .add_counter(&self.metric("bytes_rx"), frame.len() as u64);
        self.slots.lock()[slot_idx].last_seen = Instant::now();
        let plain = match open.open(frame) {
            Ok(p) => p,
            Err(e) => {
                self.log
                    .warn("ClientManager", format!("{site}: rejected frame: {e}"));
                return SessionPhase::Established {
                    slot: slot_idx,
                    open,
                    site,
                };
            }
        };
        match ClientMessage::from_frame(&plain) {
            Ok(ClientMessage::Bye { .. }) => {
                self.slots.lock()[slot_idx].alive = false;
                self.log
                    .info("ClientManager", format!("{site} disconnected."));
                self.reg.bump();
                return SessionPhase::Closed;
            }
            Ok(ClientMessage::Heartbeat { .. }) => {
                // Liveness refresh only; not workflow traffic.
                self.log
                    .info("ClientManager", format!("{site}: heartbeat received"));
            }
            Ok(ClientMessage::CodecPropose { specs, .. }) => {
                if !self.codecs_enabled.load(Ordering::Relaxed) {
                    // A pre-codec server would not know this tag; stay
                    // silent so the client falls back to raw.
                    self.log.warn(
                        "ClientManager",
                        format!("{site}: ignoring codec proposal (codecs disabled)"),
                    );
                } else {
                    let chosen = specs.iter().find_map(|s| CodecSpec::parse(s).ok());
                    let reply = ServerMessage::CodecAck {
                        chosen: chosen.as_ref().map(|c| c.to_string()),
                        supported: SUPPORTED_CODECS.iter().map(|s| (*s).to_string()).collect(),
                    };
                    {
                        let mut guard = self.slots.lock();
                        let slot = &mut guard[slot_idx];
                        slot.codec = chosen.filter(|c| !c.is_raw());
                        slot.codec_decided = true;
                        if let Some(c) = &slot.codec {
                            self.log.info(
                                "ClientManager",
                                format!("{site}: negotiated wire codec {c}"),
                            );
                        }
                        FlServer::send_to_slot(
                            slot,
                            &reply,
                            &self.log,
                            &self.obs(),
                            &self.metric("bytes_tx"),
                        );
                    }
                    self.reg.bump();
                }
            }
            Ok(ClientMessage::SubmitEnc {
                round,
                ack,
                n_examples,
                metrics,
                enc,
            }) => {
                let spec = {
                    let mut guard = self.slots.lock();
                    let slot = &mut guard[slot_idx];
                    if ack != NO_BASE {
                        slot.acked = Some(ack);
                    }
                    slot.codec.clone()
                };
                match self.decode_uplink(&enc, spec.as_ref()) {
                    Ok(weights) => {
                        wire_count("flare.wire.bytes_rx_encoded", plain.len() as u64);
                        wire_count(
                            "flare.wire.bytes_rx_raw",
                            raw_submit_frame_size(&weights, &metrics),
                        );
                        let dxo = Dxo {
                            kind: DxoKind::Weights,
                            weights,
                            metrics,
                            n_examples,
                        };
                        let _ = inbox.send(InboxMsg::Submit {
                            slot: slot_idx,
                            round,
                            dxo,
                            shard: None,
                        });
                    }
                    Err(e) => {
                        wire_count("flare.wire.codec.decode_errors", 1);
                        self.log.warn(
                            "ClientManager",
                            format!("{site}: dropping undecodable round-{round} submission: {e}"),
                        );
                    }
                }
            }
            Ok(ClientMessage::ValidateReportEnc { round, metric, ack }) => {
                if ack != NO_BASE {
                    self.slots.lock()[slot_idx].acked = Some(ack);
                }
                let _ = inbox.send(InboxMsg::Validate {
                    slot: slot_idx,
                    round,
                    reports: vec![(site.clone(), metric)],
                });
            }
            Ok(ClientMessage::Submit { round, dxo }) => {
                // Raw submissions: raw and encoded wire bytes are the
                // same by definition.
                wire_count("flare.wire.bytes_rx_encoded", plain.len() as u64);
                wire_count("flare.wire.bytes_rx_raw", plain.len() as u64);
                let _ = inbox.send(InboxMsg::Submit {
                    slot: slot_idx,
                    round,
                    dxo,
                    shard: None,
                });
            }
            Ok(ClientMessage::ValidateReport { round, metric }) => {
                let _ = inbox.send(InboxMsg::Validate {
                    slot: slot_idx,
                    round,
                    reports: vec![(site.clone(), metric)],
                });
            }
            Ok(ClientMessage::SubmitShard {
                round,
                ack,
                n_examples,
                sites,
                dropped,
                payload,
            }) => {
                let spec = {
                    let mut guard = self.slots.lock();
                    let slot = &mut guard[slot_idx];
                    if ack != NO_BASE {
                        slot.acked = Some(ack);
                    }
                    slot.codec.clone()
                };
                let decoded = match payload {
                    ShardPayload::Raw(w) => {
                        wire_count("flare.wire.bytes_rx_encoded", plain.len() as u64);
                        wire_count("flare.wire.bytes_rx_raw", plain.len() as u64);
                        Ok(w)
                    }
                    ShardPayload::Encoded(enc) => {
                        let r = self.decode_uplink(&enc, spec.as_ref());
                        if let Ok(w) = &r {
                            wire_count("flare.wire.bytes_rx_encoded", plain.len() as u64);
                            wire_count(
                                "flare.wire.bytes_rx_raw",
                                raw_submit_frame_size(w, &BTreeMap::new()),
                            );
                        }
                        r
                    }
                };
                match decoded {
                    Ok(weights) => {
                        let dxo = Dxo::from_weights(weights, n_examples);
                        let _ = inbox.send(InboxMsg::Submit {
                            slot: slot_idx,
                            round,
                            dxo,
                            shard: Some(ShardMeta { sites, dropped }),
                        });
                    }
                    Err(e) => {
                        wire_count("flare.wire.codec.decode_errors", 1);
                        self.log.warn(
                            "ClientManager",
                            format!("{site}: dropping undecodable round-{round} shard: {e}"),
                        );
                    }
                }
            }
            Ok(ClientMessage::ValidateShard {
                round,
                ack,
                reports,
            }) => {
                if ack != NO_BASE {
                    self.slots.lock()[slot_idx].acked = Some(ack);
                }
                let _ = inbox.send(InboxMsg::Validate {
                    slot: slot_idx,
                    round,
                    reports,
                });
            }
            Ok(ClientMessage::AnnounceLeaves { sites }) => {
                self.log.info(
                    "ClientManager",
                    format!(
                        "{site}: aggregator node covering {} leaf site(s)",
                        sites.len()
                    ),
                );
                self.slots.lock()[slot_idx].leaves = Some(sites);
                self.reg.bump();
            }
            Ok(msg) => {
                self.log.warn(
                    "ClientManager",
                    format!("{site}: unexpected message: {msg:?}"),
                );
            }
            Err(e) => self
                .log
                .warn("ClientManager", format!("{site}: bad message: {e}")),
        }
        SessionPhase::Established {
            slot: slot_idx,
            open,
            site,
        }
    }

    /// Reconstructs uplink weights against the ring (shared by `SubmitEnc`
    /// and encoded `SubmitShard` payloads).
    fn decode_uplink(
        &self,
        enc: &crate::codec::EncodedWeights,
        spec: Option<&CodecSpec>,
    ) -> Result<crate::dxo::Weights, FlareError> {
        let ring = self.ring.lock();
        let base = if enc.base_id == NO_BASE {
            None
        } else {
            spec.and_then(|sp| ring.recon(sp, enc.base_id))
        };
        if enc.base_id != NO_BASE && base.is_none() {
            wire_count("flare.wire.codec.base_misses", 1);
            return Err(FlareError::Codec(format!(
                "uplink base payload {} unknown",
                enc.base_id
            )));
        }
        decode_weights(enc, base)
    }
}

/// Drains ready sessions until the queue closes. The whole server's
/// inbound path runs on this one thread.
fn run_reactor(shared: Arc<ServerShared>, inbox: mpsc::Sender<InboxMsg>) {
    while let Some(token) = shared.ready.pop() {
        let rx = {
            let sessions = shared.sessions.lock();
            match sessions.get(token) {
                Some(cell) if !matches!(cell.phase, SessionPhase::Closed) => Arc::clone(&cell.rx),
                _ => continue,
            }
        };
        loop {
            match rx.try_pop() {
                Ok(Some(frame)) => shared.on_frame(token, &frame, &inbox),
                Ok(None) => break,
                Err(_) => {
                    shared.on_session_closed(token);
                    break;
                }
            }
        }
    }
}

/// The federated-learning server (NVFlare's `ServerRunner`/`ClientManager`
/// pair): accepts registrations, maintains encrypted sessions, and exposes
/// the [`ClientGateway`] interface to the workflow controller.
pub struct FlServer {
    shared: Arc<ServerShared>,
    inbox_rx: mpsc::Receiver<InboxMsg>,
    reactor: Option<JoinHandle<()>>,
    pump_threads: Vec<JoinHandle<()>>,
    rng: StdRng,
    quorum: QuorumPolicy,
    /// Leaf manifests per gathered round (tree topologies only).
    manifests: Mutex<BTreeMap<u32, RoundManifest>>,
}

impl std::fmt::Debug for FlServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlServer")
            .field("project", &self.shared.config.project)
            .field("clients", &self.shared.slots.lock().len())
            .finish_non_exhaustive()
    }
}

impl FlServer {
    /// Creates a server for a provisioned project and starts its reactor
    /// thread.
    pub fn new(config: ServerConfig, log: EventLog, seed: u64) -> Self {
        let (inbox_tx, inbox_rx) = mpsc::channel();
        let shared = Arc::new(ServerShared {
            config,
            log,
            slots: Mutex::new(Vec::new()),
            sessions: Mutex::new(Vec::new()),
            ready: Arc::new(ReadyQueue::default()),
            stopping: AtomicBool::new(false),
            codecs_enabled: AtomicBool::new(true),
            ring: Mutex::new(GlobalRing::default()),
            reg: Signal::default(),
            ns: Mutex::new("flare.server".to_string()),
            obs: Mutex::new(Registry::global()),
            open_sessions: AtomicUsize::new(0),
            peak_sessions: AtomicUsize::new(0),
        });
        let reactor_shared = Arc::clone(&shared);
        let reactor = std::thread::spawn(move || run_reactor(reactor_shared, inbox_tx));
        FlServer {
            shared,
            inbox_rx,
            reactor: Some(reactor),
            pump_threads: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            quorum: QuorumPolicy {
                min_clients: usize::MAX,
                grace: None,
            },
            manifests: Mutex::new(BTreeMap::new()),
        }
    }

    /// Enables or disables wire-codec negotiation (default enabled).
    /// Disabling makes the server behave like a pre-codec peer: codec
    /// proposals are ignored and every downlink ships raw f32.
    pub fn set_wire_codecs_enabled(&mut self, enabled: bool) {
        self.shared.codecs_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Routes this server's byte/session metrics under `ns` instead of
    /// the default `flare.server` (interior tree nodes use `flare.tree`
    /// so root and relay traffic stay distinguishable in snapshots).
    pub fn set_metric_namespace(&mut self, ns: &str) {
        *self.shared.ns.lock() = ns.to_string();
    }

    /// Records this server's metrics into `obs` instead of the global
    /// registry. The job runtime hands each job's server its own scope so
    /// concurrent jobs never contaminate each other's snapshots; call
    /// before any client traffic, or early counts land in the old scope.
    pub fn set_registry(&mut self, obs: Registry) {
        *self.shared.obs.lock() = obs;
    }

    /// Number of registered (ever-joined) clients.
    pub fn num_registered(&self) -> usize {
        self.shared.slots.lock().len()
    }

    /// Highest number of simultaneously open sessions this server has
    /// seen (registered or still in handshake).
    pub fn peak_sessions(&self) -> usize {
        self.shared.peak_sessions.load(Ordering::SeqCst)
    }

    /// Number of sessions currently open (not yet closed).
    pub fn open_sessions(&self) -> usize {
        self.shared.open_sessions.load(Ordering::SeqCst)
    }

    /// Configures the gather-phase quorum: once at least `min_clients`
    /// submissions have arrived for a round and no further submission has
    /// been accepted for `grace`, the round closes early instead of
    /// waiting out the full round timeout. `grace: None` keeps the
    /// original wait-for-all behavior. With tree aggregation the count is
    /// leaf-granular (a shard covering 4 leaves counts as 4).
    pub fn set_quorum(&mut self, min_clients: usize, grace: Option<Duration>) {
        self.quorum = QuorumPolicy {
            min_clients: min_clients.max(1),
            grace,
        };
    }

    /// Opens a reactor-native in-process session and returns the client's
    /// end. No thread is spawned: the session's mailbox notifies the
    /// reactor directly, which is what lets the simulator stand up 1024+
    /// sites without 1024 server-side handler threads.
    pub fn serve_session(&mut self) -> Connection {
        let dh_secret: u64 = self.rng.random();
        let session_bits: (u64, u64) = (self.rng.random(), self.rng.random());
        let s2c = FrameQueue::new();
        let mut sessions = self.shared.sessions.lock();
        let token = sessions.len();
        let c2s = FrameQueue::notifying(Arc::clone(&self.shared.ready), token);
        sessions.push(SessionCell {
            rx: Arc::clone(&c2s),
            phase: SessionPhase::AwaitRegister {
                tx: Some(Box::new(QueueTx(Arc::clone(&s2c)))),
                dh_secret,
                session_bits,
            },
        });
        drop(sessions);
        self.shared.inc_open();
        Connection {
            tx: Box::new(QueueTx(c2s)),
            rx: Box::new(QueueRx(s2c)),
        }
    }

    /// Accepts an externally transported connection (TCP, fault-wrapped,
    /// …): a thin pump thread copies inbound frames into the session
    /// mailbox; all protocol handling still happens on the reactor.
    pub fn serve_connection(&mut self, conn: Connection) {
        let Connection { tx, mut rx } = conn;
        let dh_secret: u64 = self.rng.random();
        let session_bits: (u64, u64) = (self.rng.random(), self.rng.random());
        let c2s = {
            let mut sessions = self.shared.sessions.lock();
            let token = sessions.len();
            let c2s = FrameQueue::notifying(Arc::clone(&self.shared.ready), token);
            sessions.push(SessionCell {
                rx: Arc::clone(&c2s),
                phase: SessionPhase::AwaitRegister {
                    tx: Some(tx),
                    dh_secret,
                    session_bits,
                },
            });
            (c2s, token)
        };
        let (c2s, token) = c2s;
        self.shared.inc_open();
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::spawn(move || loop {
            // Receive in short slices so the pump notices server shutdown
            // (and its own session's closure) promptly even while a quiet
            // client stays connected.
            if shared.stopping.load(Ordering::Relaxed) || shared.session_is_closed(token) {
                c2s.close();
                return;
            }
            match rx.recv(Duration::from_millis(200)) {
                Ok(frame) => {
                    if c2s.push(frame).is_err() {
                        return;
                    }
                }
                Err(FlareError::Timeout) => continue,
                Err(_) => {
                    c2s.close();
                    return;
                }
            }
        });
        self.pump_threads.push(handle);
    }

    /// Blocks until `n` clients have registered or `timeout` passes.
    /// Returns the registered count.
    ///
    /// With codecs enabled, a short settle window follows: codec
    /// proposals ride a separate message right after registration, so
    /// broadcasting immediately would race them and ship full-f32 frames
    /// to clients that were about to negotiate. The settle waits up to
    /// 150 ms for every registered client to announce a codec choice —
    /// extended to 1 s once at least one announcement has arrived
    /// (evidence of a negotiating fleet whose remaining proposals may
    /// have been lost to link faults). Old peers never announce, so an
    /// all-legacy fleet pays at most the 150 ms floor. Both waits block
    /// on the registration [`Signal`] — no sleep-polling.
    pub fn wait_for_clients(&self, n: usize, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let count = loop {
            let since = self.shared.reg.version();
            let count = self.shared.slots.lock().len();
            if count >= n || Instant::now() >= deadline {
                break count;
            }
            self.shared.reg.wait_past(since, deadline);
        };
        if !self.shared.codecs_enabled.load(Ordering::Relaxed) {
            return count;
        }
        let settle = Instant::now() + Duration::from_millis(150);
        let grace = Instant::now() + Duration::from_secs(1);
        loop {
            let since = self.shared.reg.version();
            let (decided, total) = {
                let guard = self.shared.slots.lock();
                (
                    guard.iter().filter(|s| s.codec_decided).count(),
                    guard.len(),
                )
            };
            if decided >= total {
                break;
            }
            let limit = if decided > 0 { grace } else { settle };
            if Instant::now() >= limit {
                break;
            }
            self.shared.reg.wait_past(since, limit);
        }
        self.shared.slots.lock().len()
    }

    /// Blocks until the registered clients cover at least `n` leaf sites
    /// or `timeout` passes; returns the covered leaf count. With tree
    /// aggregation, registration of an interior node and its
    /// [`ClientMessage::AnnounceLeaves`] ride separate frames, so a root
    /// that only waited for registrations could start a round before it
    /// knows the true leaf population.
    pub fn wait_for_leaves(&self, n: usize, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        loop {
            let since = self.shared.reg.version();
            let count: usize = self
                .shared
                .slots
                .lock()
                .iter()
                .filter(|s| s.alive)
                .map(|s| s.leaves.as_ref().map_or(1, Vec::len))
                .sum();
            if count >= n || Instant::now() >= deadline {
                return count;
            }
            self.shared.reg.wait_past(since, deadline);
        }
    }

    /// Stops the reactor and pump threads and waits for them. Idempotent;
    /// safe to call while clients are still connected (their sessions are
    /// abandoned server-side).
    pub fn shutdown(&mut self) {
        self.shared.stopping.store(true, Ordering::Relaxed);
        self.shared.ready.close();
        self.shared.reg.bump();
        for h in self.pump_threads.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }

    /// Alias for [`FlServer::shutdown`]; idempotent.
    pub fn stop(&mut self) {
        self.shutdown();
    }

    /// Releases every client connection's sending half, marks the slots
    /// dead, and closes every session mailbox. For in-process transports
    /// this closes both channel directions, so a client blocked in `recv`
    /// wakes with a disconnect instead of waiting out its full timeout —
    /// the simulator calls this after [`FlServer::shutdown`] so a
    /// fault-dropped `Finish` frame cannot strand its client. Slots stay
    /// in the table (indices are stable) and remain visible to
    /// [`FlServer::sessions`].
    pub fn disconnect_all(&mut self) {
        for slot in self.shared.slots.lock().iter_mut() {
            slot.tx = None;
            slot.alive = false;
        }
        for cell in self.shared.sessions.lock().iter_mut() {
            cell.rx.close();
            if let SessionPhase::AwaitRegister { tx, .. } = &mut cell.phase {
                *tx = None;
            }
        }
        self.shared.reg.bump();
    }

    /// Liveness snapshot: `(site, idle-for, alive)` per registered client,
    /// in registration order. `idle-for` is the time since the last frame
    /// (including heartbeats) arrived from that site.
    pub fn liveness(&self) -> Vec<(String, Duration, bool)> {
        self.shared
            .slots
            .lock()
            .iter()
            .map(|s| (s.site.clone(), s.last_seen.elapsed(), s.alive))
            .collect()
    }

    /// Sites still marked alive whose last frame is older than `max_idle`
    /// — candidates for being declared dead by an operator.
    pub fn stale_sites(&self, max_idle: Duration) -> Vec<String> {
        self.shared
            .slots
            .lock()
            .iter()
            .filter(|s| s.alive && s.last_seen.elapsed() > max_idle)
            .map(|s| s.site.clone())
            .collect()
    }

    fn send_to_slot(
        slot: &mut ClientSlot,
        msg: &ServerMessage,
        log: &EventLog,
        obs: &Registry,
        tx_metric: &str,
    ) -> bool {
        Self::send_frame_to_slot(slot, &msg.to_frame(), log, obs, tx_metric)
    }

    fn send_frame_to_slot(
        slot: &mut ClientSlot,
        plain: &[u8],
        log: &EventLog,
        obs: &Registry,
        tx_metric: &str,
    ) -> bool {
        let sealed = slot.seal.seal(plain);
        let Some(tx) = slot.tx.as_mut() else {
            return false;
        };
        match tx.send(&sealed) {
            Ok(()) => {
                obs.add_counter(tx_metric, sealed.len() as u64);
                true
            }
            Err(e) => {
                slot.alive = false;
                log.warn("ServerRunner", format!("{}: send failed: {e}", slot.site));
                false
            }
        }
    }

    /// How long the next inbox wait may run: bounded by the round
    /// deadline, and — once the quorum is met — by the remaining grace
    /// since the last accepted submission. `None` means stop waiting.
    fn gather_wait(
        &self,
        got: usize,
        deadline: Instant,
        last_progress: Instant,
    ) -> Option<Duration> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return None;
        }
        if got >= self.quorum.min_clients {
            if let Some(grace) = self.quorum.grace {
                let grace_left = grace.saturating_sub(last_progress.elapsed());
                if grace_left.is_zero() {
                    return None;
                }
                return Some(remaining.min(grace_left));
            }
        }
        Some(remaining)
    }

    /// Relay-facing variant of [`ClientGateway::collect_submissions`]:
    /// inbox waits are sliced to `poll`, and `superseded` is consulted
    /// between slices. When it reports true the gather is abandoned —
    /// `None`, manifest table untouched — because the round has already
    /// closed at the caller's parent, so a shard submitted now would only
    /// be discarded upstream as out-of-phase. An interior tree node
    /// passes a probe of its uplink here; without it, a shard whose
    /// leaves all missed the task broadcast pins the node in a dead
    /// gather while its parent (closing rounds early on quorum grace)
    /// races ahead, and the node relays stale rounds forever after.
    pub fn collect_submissions_interruptible(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
        poll: Duration,
        superseded: &mut dyn FnMut() -> bool,
    ) -> Option<Vec<(String, Dxo)>> {
        let deadline = Instant::now() + timeout;
        let mut last_progress = Instant::now();
        let mut out: Vec<(String, Dxo)> = Vec::new();
        // Leaf-granular accounting: a shard covering k leaves advances
        // the quorum by k, and its bookkeeping lands in the round
        // manifest so the controller can expand it back to leaves.
        let mut metas: Vec<(String, ShardMeta)> = Vec::new();
        let mut any_shard = false;
        let mut got_leaves = 0usize;
        while got_leaves < expected {
            if superseded() {
                return None;
            }
            let Some(wait) = self.gather_wait(got_leaves, deadline, last_progress) else {
                break;
            };
            match self.inbox_rx.recv_timeout(wait.min(poll)) {
                Ok(InboxMsg::Submit {
                    slot,
                    round: r,
                    dxo,
                    shard,
                }) if r == round => {
                    let site = self.shared.slots.lock()[slot].site.clone();
                    if out.iter().any(|(s, _)| *s == site) {
                        self.shared
                            .log
                            .warn("ServerRunner", format!("duplicate submit from {site}"));
                        continue;
                    }
                    let meta = match shard {
                        Some(m) => {
                            any_shard = true;
                            m
                        }
                        None => ShardMeta {
                            sites: vec![(site.clone(), dxo.metrics.clone())],
                            dropped: Vec::new(),
                        },
                    };
                    got_leaves += meta.sites.len().max(1);
                    metas.push((site.clone(), meta));
                    out.push((site, dxo));
                    last_progress = Instant::now();
                }
                Ok(msg) => {
                    let slot = match &msg {
                        InboxMsg::Submit { slot, .. } | InboxMsg::Validate { slot, .. } => *slot,
                    };
                    let site = self.shared.slots.lock()[slot].site.clone();
                    self.shared.log.warn(
                        "ServerRunner",
                        format!("{site}: out-of-phase message during round {round}: {msg:?}"),
                    );
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Re-evaluate the deadline/grace budget at the top.
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        {
            let mut manifests = self.manifests.lock();
            if any_shard {
                manifests.insert(
                    round,
                    RoundManifest {
                        shards: metas.into_iter().collect(),
                    },
                );
            } else {
                manifests.remove(&round);
            }
            while manifests.len() > MANIFEST_RETENTION {
                let oldest = *manifests.keys().next().expect("non-empty");
                manifests.remove(&oldest);
            }
        }
        Some(out)
    }

    /// The validation-phase twin of
    /// [`Self::collect_submissions_interruptible`].
    pub fn collect_validations_interruptible(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
        poll: Duration,
        superseded: &mut dyn FnMut() -> bool,
    ) -> Option<Vec<(String, f64)>> {
        let deadline = Instant::now() + timeout;
        let mut last_progress = Instant::now();
        let mut out: Vec<(String, f64)> = Vec::new();
        while out.len() < expected {
            if superseded() {
                return None;
            }
            let Some(wait) = self.gather_wait(out.len(), deadline, last_progress) else {
                break;
            };
            match self.inbox_rx.recv_timeout(wait.min(poll)) {
                Ok(InboxMsg::Validate {
                    round: r, reports, ..
                }) if r == round => {
                    for (leaf, metric) in reports {
                        if !out.iter().any(|(s, _)| *s == leaf) {
                            out.push((leaf, metric));
                            last_progress = Instant::now();
                        }
                    }
                }
                Ok(_) => {} // stale submit etc.
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        Some(out)
    }
}

impl Drop for FlServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ClientGateway for FlServer {
    fn client_sites(&self) -> Vec<String> {
        self.shared
            .slots
            .lock()
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.site.clone())
            .collect()
    }

    fn leaf_sites(&self) -> Vec<String> {
        self.shared
            .slots
            .lock()
            .iter()
            .filter(|s| s.alive)
            .flat_map(|s| match &s.leaves {
                Some(leaves) => leaves.clone(),
                None => vec![s.site.clone()],
            })
            .collect()
    }

    fn round_manifest(&self, round: u32) -> Option<RoundManifest> {
        self.manifests.lock().get(&round).cloned()
    }

    fn broadcast(&mut self, task: &TaskAssignment) -> usize {
        // Weight-bearing tasks go through the wire codec per slot; Finish
        // (and any task for a raw peer) ships in the legacy format.
        let (weights, is_train) = match task {
            TaskAssignment::Train { weights, .. } => (Some(weights), true),
            TaskAssignment::Validate { weights, .. } => (Some(weights), false),
            _ => (None, false),
        };
        let raw_frame = ServerMessage::Task(task.clone()).to_frame();
        let tx_metric = self.shared.metric("bytes_tx");
        let obs = self.shared.obs();
        let mut sent = 0;
        // Lock order: slots, then ring (matches the reactor, which never
        // holds both at once).
        let mut slots = self.shared.slots.lock();
        let any_codec = weights.is_some()
            && self.shared.codecs_enabled.load(Ordering::Relaxed)
            && slots.iter().any(|s| s.alive && s.codec.is_some());
        if !any_codec {
            for slot in slots.iter_mut().filter(|s| s.alive) {
                if Self::send_frame_to_slot(slot, &raw_frame, &self.shared.log, &obs, &tx_metric) {
                    if weights.is_some() {
                        wire_count("flare.wire.bytes_tx_encoded", raw_frame.len() as u64);
                        wire_count("flare.wire.bytes_tx_raw", raw_frame.len() as u64);
                    }
                    sent += 1;
                }
            }
            return sent;
        }
        let weights = weights.expect("any_codec implies weight-bearing task");
        let raw_size = raw_task_frame_size(weights, is_train);
        let mut ring = self.shared.ring.lock();
        let id = ring.publish(weights);
        // Group the round's receivers by spec so the ring can downgrade
        // a spec's entry to a self-contained head when any of its clients
        // would otherwise need an expensive exact full / catch-up frame.
        let mut by_spec: BTreeMap<String, (CodecSpec, Vec<Option<u32>>)> = BTreeMap::new();
        for slot in slots.iter().filter(|s| s.alive) {
            if let Some(spec) = &slot.codec {
                by_spec
                    .entry(spec.to_string())
                    .or_insert_with(|| (spec.clone(), Vec::new()))
                    .1
                    .push(slot.acked);
            }
        }
        for (spec, acks) in by_spec.values() {
            ring.prepare_round(spec, acks, id);
        }
        for slot in slots.iter_mut().filter(|s| s.alive) {
            let encoded = slot.codec.as_ref().and_then(|spec| {
                let (enc, kind) = ring.encode_for(spec, slot.acked, id)?;
                wire_count(
                    match kind {
                        DownlinkKind::Full => "flare.wire.codec.full_frames",
                        DownlinkKind::Delta => "flare.wire.codec.delta_frames",
                        DownlinkKind::Alias => "flare.wire.codec.alias_frames",
                        DownlinkKind::CatchUp => "flare.wire.codec.catchup_frames",
                    },
                    1,
                );
                let t = if is_train {
                    let TaskAssignment::Train {
                        round,
                        total_rounds,
                        ..
                    } = task
                    else {
                        unreachable!()
                    };
                    TaskAssignment::TrainEnc {
                        round: *round,
                        total_rounds: *total_rounds,
                        enc,
                    }
                } else {
                    let TaskAssignment::Validate { round, .. } = task else {
                        unreachable!()
                    };
                    TaskAssignment::ValidateEnc { round: *round, enc }
                };
                Some(ServerMessage::Task(t).to_frame())
            });
            let (frame, raw_equiv) = match &encoded {
                Some(f) => (f.as_slice(), raw_size),
                None => (raw_frame.as_slice(), raw_frame.len() as u64),
            };
            if Self::send_frame_to_slot(slot, frame, &self.shared.log, &obs, &tx_metric) {
                wire_count("flare.wire.bytes_tx_encoded", frame.len() as u64);
                wire_count("flare.wire.bytes_tx_raw", raw_equiv);
                sent += 1;
            }
        }
        sent
    }

    /// Slot-targeted scatter for sampled rounds: only the named sites get
    /// the task. Targeted frames always ship the self-contained raw
    /// format — a different subset every round would thrash the delta
    /// ring's per-spec base tracking, and a raw downlink simply makes the
    /// client answer with a self-contained uplink (correct, just
    /// uncompressed).
    fn send_to(&mut self, sites: &[String], task: &TaskAssignment) -> usize {
        let weight_bearing = matches!(
            task,
            TaskAssignment::Train { .. } | TaskAssignment::Validate { .. }
        );
        let raw_frame = ServerMessage::Task(task.clone()).to_frame();
        let tx_metric = self.shared.metric("bytes_tx");
        let obs = self.shared.obs();
        let mut sent = 0;
        let mut slots = self.shared.slots.lock();
        for slot in slots
            .iter_mut()
            .filter(|s| s.alive && sites.iter().any(|n| n == &s.site))
        {
            if Self::send_frame_to_slot(slot, &raw_frame, &self.shared.log, &obs, &tx_metric) {
                if weight_bearing {
                    wire_count("flare.wire.bytes_tx_encoded", raw_frame.len() as u64);
                    wire_count("flare.wire.bytes_tx_raw", raw_frame.len() as u64);
                }
                sent += 1;
            }
        }
        sent
    }

    fn collect_submissions(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
    ) -> Vec<(String, Dxo)> {
        // A never-superseded gather: the slice equals the full budget, so
        // the wait behavior is identical to the pre-interruptible path.
        self.collect_submissions_interruptible(round, expected, timeout, timeout, &mut || false)
            .unwrap_or_default()
    }

    fn collect_validations(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
    ) -> Vec<(String, f64)> {
        self.collect_validations_interruptible(round, expected, timeout, timeout, &mut || false)
            .unwrap_or_default()
    }

    fn collect_submissions_cancellable(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Option<Vec<(String, Dxo)>> {
        // 50 ms wait slices: an admin abort lands within one slice
        // instead of waiting out the round timeout.
        self.collect_submissions_interruptible(
            round,
            expected,
            timeout,
            Duration::from_millis(50),
            cancel,
        )
    }

    fn collect_validations_cancellable(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Option<Vec<(String, f64)>> {
        self.collect_validations_interruptible(
            round,
            expected,
            timeout,
            Duration::from_millis(50),
            cancel,
        )
    }
}

/// Read access to per-session metadata for demos and tests.
impl FlServer {
    /// `(site, session-token)` pairs in registration order.
    pub fn sessions(&self) -> Vec<(String, String)> {
        self.shared
            .slots
            .lock()
            .iter()
            .map(|s| (s.site.clone(), s.session.clone()))
            .collect()
    }
}
