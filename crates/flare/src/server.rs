//! The federated server: client management and the gateway the
//! ScatterAndGather controller drives.

use crate::controller::ClientGateway;
use crate::dxo::Dxo;
use crate::log::EventLog;
use crate::messages::{ClientMessage, ServerMessage, TaskAssignment};
use crate::provision::ServerConfig;
use crate::security::{DhKeyPair, SecureChannel};
use crate::transport::Connection;
use crate::wire::{WireDecode, WireEncode};
use crate::FlareError;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Nonce base for server→client frames (client→server uses 0).
const SERVER_NONCE_BASE: u64 = 1 << 32;

struct ClientSlot {
    site: String,
    session: String,
    /// `None` once the server has released the connection (see
    /// [`FlServer::disconnect_all`]).
    tx: Option<Box<dyn crate::transport::FrameTx>>,
    seal: SecureChannel,
    alive: bool,
    /// Last time any frame (task reply, heartbeat, even a corrupt one)
    /// arrived from this site.
    last_seen: Instant,
}

/// Quorum knobs for the gather phase (see [`FlServer::set_quorum`]).
#[derive(Clone, Copy, Debug)]
struct QuorumPolicy {
    min_clients: usize,
    grace: Option<Duration>,
}

/// The federated-learning server (NVFlare's `ServerRunner`/`ClientManager`
/// pair): accepts registrations, maintains encrypted sessions, and exposes
/// the [`ClientGateway`] interface to the workflow controller.
pub struct FlServer {
    config: ServerConfig,
    log: EventLog,
    slots: Arc<Mutex<Vec<ClientSlot>>>,
    inbox_tx: mpsc::Sender<(usize, ClientMessage)>,
    inbox_rx: mpsc::Receiver<(usize, ClientMessage)>,
    handler_threads: Vec<JoinHandle<()>>,
    stopping: Arc<AtomicBool>,
    rng: StdRng,
    quorum: QuorumPolicy,
}

impl std::fmt::Debug for FlServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlServer")
            .field("project", &self.config.project)
            .field("clients", &self.slots.lock().len())
            .finish_non_exhaustive()
    }
}

impl FlServer {
    /// Creates a server for a provisioned project.
    pub fn new(config: ServerConfig, log: EventLog, seed: u64) -> Self {
        let (inbox_tx, inbox_rx) = mpsc::channel();
        FlServer {
            config,
            log,
            slots: Arc::new(Mutex::new(Vec::new())),
            inbox_tx,
            inbox_rx,
            handler_threads: Vec::new(),
            stopping: Arc::new(AtomicBool::new(false)),
            rng: StdRng::seed_from_u64(seed),
            quorum: QuorumPolicy {
                min_clients: usize::MAX,
                grace: None,
            },
        }
    }

    /// Number of registered (ever-joined) clients.
    pub fn num_registered(&self) -> usize {
        self.slots.lock().len()
    }

    /// Configures the gather-phase quorum: once at least `min_clients`
    /// submissions have arrived for a round and no further submission has
    /// been accepted for `grace`, the round closes early instead of
    /// waiting out the full round timeout. `grace: None` keeps the
    /// original wait-for-all behavior.
    pub fn set_quorum(&mut self, min_clients: usize, grace: Option<Duration>) {
        self.quorum = QuorumPolicy {
            min_clients: min_clients.max(1),
            grace,
        };
    }

    /// Accepts one connection: performs the token/key handshake on a
    /// handler thread, then forwards decrypted client messages into the
    /// server inbox.
    pub fn serve_connection(&mut self, mut conn: Connection) {
        let config = self.config.clone();
        let log = self.log.clone();
        let slots = Arc::clone(&self.slots);
        let inbox = self.inbox_tx.clone();
        let stopping = Arc::clone(&self.stopping);
        let dh_secret: u64 = self.rng.random();
        let session_bits: (u64, u64) = (self.rng.random(), self.rng.random());
        let handle = std::thread::spawn(move || {
            // --- Handshake (plaintext, like NVFlare's join) ---
            let frame = match conn.rx.recv(Duration::from_secs(30)) {
                Ok(f) => f,
                Err(e) => {
                    log.warn(
                        "ClientManager",
                        format!("connection dropped pre-register: {e}"),
                    );
                    return;
                }
            };
            let msg = match ClientMessage::from_frame(&frame) {
                Ok(m) => m,
                Err(e) => {
                    log.warn("ClientManager", format!("bad register frame: {e}"));
                    return;
                }
            };
            let ClientMessage::Register {
                site,
                token,
                dh_public,
            } = msg
            else {
                log.warn("ClientManager", "first frame was not Register");
                return;
            };
            let accepted = config.verify(&site, &token)
                && !slots.lock().iter().any(|s| s.site == site && s.alive);
            let keys = DhKeyPair::from_secret(dh_secret);
            // UUID-shaped session token, as in the paper's Fig. 3 log.
            let (hi, lo) = session_bits;
            let session_str = format!(
                "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
                (hi >> 32) as u32,
                (hi >> 16) & 0xffff,
                hi & 0xffff,
                (lo >> 48) & 0xffff,
                lo & 0xffff_ffff_ffff
            );
            let ack = ServerMessage::RegisterAck {
                accepted,
                session: session_str.clone(),
                dh_public: keys.public,
            };
            if conn.tx.send(&ack.to_frame()).is_err() || !accepted {
                if !accepted {
                    log.warn(
                        "ClientManager",
                        format!("Client {site} rejected: invalid token or duplicate"),
                    );
                }
                return;
            }
            let key = keys.shared_key(dh_public);
            let slot_idx = {
                let mut guard = slots.lock();
                guard.push(ClientSlot {
                    site: site.clone(),
                    session: session_str.clone(),
                    tx: Some(conn.tx),
                    seal: SecureChannel::new(key, SERVER_NONCE_BASE),
                    alive: true,
                    last_seen: Instant::now(),
                });
                guard.len() - 1
            };
            log.info(
                "ClientManager",
                format!(
                    "Client: New client {site}@127.0.0.1 joined. Sent token: {session_str}. Total clients: {}",
                    slot_idx + 1
                ),
            );
            log.info(
                "FederatedClient",
                format!(
                    "Successfully registered client:{site} for project {}. Token:{session_str}",
                    config.project
                ),
            );

            // --- Session loop: decrypt and forward ---
            // Receive in short slices so the handler notices server
            // shutdown promptly even while a quiet client stays connected.
            let open = SecureChannel::new(key, 0);
            loop {
                if stopping.load(Ordering::Relaxed) {
                    return;
                }
                match conn.rx.recv(Duration::from_millis(200)) {
                    Ok(frame) => {
                        clinfl_obs::add_counter("flare.server.bytes_rx", frame.len() as u64);
                        slots.lock()[slot_idx].last_seen = Instant::now();
                        let plain = match open.open(&frame) {
                            Ok(p) => p,
                            Err(e) => {
                                log.warn("ClientManager", format!("{site}: rejected frame: {e}"));
                                continue;
                            }
                        };
                        match ClientMessage::from_frame(&plain) {
                            Ok(ClientMessage::Bye { .. }) => {
                                slots.lock()[slot_idx].alive = false;
                                log.info("ClientManager", format!("{site} disconnected."));
                                return;
                            }
                            Ok(ClientMessage::Heartbeat { .. }) => {
                                // Liveness refresh only; not workflow traffic.
                                log.info("ClientManager", format!("{site}: heartbeat received"));
                            }
                            Ok(msg) => {
                                if inbox.send((slot_idx, msg)).is_err() {
                                    return; // server gone
                                }
                            }
                            Err(e) => {
                                log.warn("ClientManager", format!("{site}: bad message: {e}"))
                            }
                        }
                    }
                    Err(FlareError::Timeout) => continue,
                    Err(e) => {
                        slots.lock()[slot_idx].alive = false;
                        log.warn("ClientManager", format!("{site} connection lost: {e}"));
                        return;
                    }
                }
            }
        });
        self.handler_threads.push(handle);
    }

    /// Blocks until `n` clients have registered or `timeout` passes.
    /// Returns the registered count.
    pub fn wait_for_clients(&self, n: usize, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            let count = self.slots.lock().len();
            if count >= n {
                return count;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.slots.lock().len()
    }

    /// Signals handler threads to stop and waits for them. Idempotent;
    /// safe to call while clients are still connected (their sessions are
    /// abandoned server-side).
    pub fn shutdown(&mut self) {
        self.stopping.store(true, Ordering::Relaxed);
        for h in self.handler_threads.drain(..) {
            let _ = h.join();
        }
    }

    /// Releases every client connection's sending half and marks the
    /// slots dead. For in-process transports this closes the channel, so
    /// a client blocked in `recv` wakes with a disconnect instead of
    /// waiting out its full timeout — the simulator calls this after
    /// [`FlServer::shutdown`] so a fault-dropped `Finish` frame cannot
    /// strand its client. Slots stay in the table (indices are stable)
    /// and remain visible to [`FlServer::sessions`].
    pub fn disconnect_all(&mut self) {
        for slot in self.slots.lock().iter_mut() {
            slot.tx = None;
            slot.alive = false;
        }
    }

    /// Liveness snapshot: `(site, idle-for, alive)` per registered client,
    /// in registration order. `idle-for` is the time since the last frame
    /// (including heartbeats) arrived from that site.
    pub fn liveness(&self) -> Vec<(String, Duration, bool)> {
        self.slots
            .lock()
            .iter()
            .map(|s| (s.site.clone(), s.last_seen.elapsed(), s.alive))
            .collect()
    }

    /// Sites still marked alive whose last frame is older than `max_idle`
    /// — candidates for being declared dead by an operator.
    pub fn stale_sites(&self, max_idle: Duration) -> Vec<String> {
        self.slots
            .lock()
            .iter()
            .filter(|s| s.alive && s.last_seen.elapsed() > max_idle)
            .map(|s| s.site.clone())
            .collect()
    }

    fn send_to_slot(slot: &mut ClientSlot, msg: &ServerMessage, log: &EventLog) -> bool {
        let sealed = slot.seal.seal(&msg.to_frame());
        let Some(tx) = slot.tx.as_mut() else {
            return false;
        };
        match tx.send(&sealed) {
            Ok(()) => {
                clinfl_obs::add_counter("flare.server.bytes_tx", sealed.len() as u64);
                true
            }
            Err(e) => {
                slot.alive = false;
                log.warn("ServerRunner", format!("{}: send failed: {e}", slot.site));
                false
            }
        }
    }

    /// How long the next inbox wait may run: bounded by the round
    /// deadline, and — once the quorum is met — by the remaining grace
    /// since the last accepted submission. `None` means stop waiting.
    fn gather_wait(
        &self,
        got: usize,
        deadline: Instant,
        last_progress: Instant,
    ) -> Option<Duration> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return None;
        }
        if got >= self.quorum.min_clients {
            if let Some(grace) = self.quorum.grace {
                let grace_left = grace.saturating_sub(last_progress.elapsed());
                if grace_left.is_zero() {
                    return None;
                }
                return Some(remaining.min(grace_left));
            }
        }
        Some(remaining)
    }
}

impl ClientGateway for FlServer {
    fn client_sites(&self) -> Vec<String> {
        self.slots
            .lock()
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.site.clone())
            .collect()
    }

    fn broadcast(&mut self, task: &TaskAssignment) -> usize {
        let msg = ServerMessage::Task(task.clone());
        let mut sent = 0;
        for slot in self.slots.lock().iter_mut().filter(|s| s.alive) {
            if Self::send_to_slot(slot, &msg, &self.log) {
                sent += 1;
            }
        }
        sent
    }

    fn collect_submissions(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
    ) -> Vec<(String, Dxo)> {
        let deadline = Instant::now() + timeout;
        let mut last_progress = Instant::now();
        let mut out: Vec<(String, Dxo)> = Vec::new();
        while out.len() < expected {
            let Some(wait) = self.gather_wait(out.len(), deadline, last_progress) else {
                break;
            };
            match self.inbox_rx.recv_timeout(wait) {
                Ok((slot, ClientMessage::Submit { round: r, dxo })) if r == round => {
                    let site = self.slots.lock()[slot].site.clone();
                    if out.iter().any(|(s, _)| *s == site) {
                        self.log
                            .warn("ServerRunner", format!("duplicate submit from {site}"));
                        continue;
                    }
                    out.push((site, dxo));
                    last_progress = Instant::now();
                }
                Ok((slot, msg)) => {
                    let site = self.slots.lock()[slot].site.clone();
                    self.log.warn(
                        "ServerRunner",
                        format!("{site}: out-of-phase message during round {round}: {msg:?}"),
                    );
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Re-evaluate the deadline/grace budget at the top.
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        out
    }

    fn collect_validations(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
    ) -> Vec<(String, f64)> {
        let deadline = Instant::now() + timeout;
        let mut last_progress = Instant::now();
        let mut out: Vec<(String, f64)> = Vec::new();
        while out.len() < expected {
            let Some(wait) = self.gather_wait(out.len(), deadline, last_progress) else {
                break;
            };
            match self.inbox_rx.recv_timeout(wait) {
                Ok((slot, ClientMessage::ValidateReport { round: r, metric })) if r == round => {
                    let site = self.slots.lock()[slot].site.clone();
                    if !out.iter().any(|(s, _)| *s == site) {
                        out.push((site, metric));
                        last_progress = Instant::now();
                    }
                }
                Ok(_) => {} // stale submit etc.
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        out
    }
}

/// Read access to per-session metadata for demos and tests.
impl FlServer {
    /// `(site, session-token)` pairs in registration order.
    pub fn sessions(&self) -> Vec<(String, String)> {
        self.slots
            .lock()
            .iter()
            .map(|s| (s.site.clone(), s.session.clone()))
            .collect()
    }
}
