//! Word-level tokenizer for free-text clinical notes.
//!
//! The paper frames its models as operating on "medical records, clinical
//! notes, and other text-based health information"; its dataset is code
//! sequences (handled by [`crate::ClinicalTokenizer`]), but a deployment
//! also meets narrative notes. This module provides the standard
//! frequency-thresholded word vocabulary and tokenizer for that case.

use crate::vocab::{SpecialToken, Vocab};
use std::collections::HashMap;

/// Builds a [`Vocab`] from raw text by frequency.
///
/// Words are lowercased and split on whitespace and punctuation (digits are
/// kept, so dosages like `75mg` survive as tokens). Words occurring fewer
/// than `min_count` times map to `[UNK]` at encode time.
#[derive(Clone, Debug)]
pub struct WordVocabBuilder {
    min_count: usize,
    counts: HashMap<String, usize>,
}

impl WordVocabBuilder {
    /// Creates a builder keeping words seen at least `min_count` times.
    ///
    /// # Panics
    ///
    /// Panics if `min_count` is zero.
    pub fn new(min_count: usize) -> Self {
        assert!(min_count > 0, "min_count must be at least 1");
        WordVocabBuilder {
            min_count,
            counts: HashMap::new(),
        }
    }

    /// Accumulates the words of one document.
    pub fn feed(&mut self, text: &str) -> &mut Self {
        for w in tokenize_words(text) {
            *self.counts.entry(w).or_insert(0) += 1;
        }
        self
    }

    /// Number of distinct words seen so far (before thresholding).
    pub fn distinct_words(&self) -> usize {
        self.counts.len()
    }

    /// Finalizes the vocabulary: words meeting the threshold, ordered by
    /// descending frequency (ties broken alphabetically for determinism).
    pub fn build(&self) -> Vocab {
        let mut kept: Vec<(&String, &usize)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= self.min_count)
            .collect();
        kept.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let mut vocab = Vocab::new();
        for (w, _) in kept {
            vocab.add(w);
        }
        vocab
    }
}

/// Splits text into lowercase word tokens (alphanumeric runs).
pub fn tokenize_words(text: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            words.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        words.push(current);
    }
    words
}

/// Tokenizer over a word vocabulary: note text → fixed-length id sequence
/// (`[CLS] words… [SEP] [PAD]…`), mirroring [`crate::ClinicalTokenizer`]'s
/// output contract so the same models consume either representation.
#[derive(Clone, Debug)]
pub struct NoteTokenizer {
    vocab: Vocab,
    max_len: usize,
}

impl NoteTokenizer {
    /// Creates a tokenizer producing sequences of exactly `max_len` ids.
    ///
    /// # Panics
    ///
    /// Panics if `max_len < 3`.
    pub fn new(vocab: Vocab, max_len: usize) -> Self {
        assert!(max_len >= 3, "max_len must be at least 3, got {max_len}");
        NoteTokenizer { vocab, max_len }
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Encodes a note, truncating to the **first** words (notes lead with
    /// the salient complaint, unlike code timelines which end with it).
    pub fn encode(&self, text: &str) -> crate::Encoded {
        let body = self.max_len - 2;
        let mut ids = Vec::with_capacity(self.max_len);
        ids.push(SpecialToken::Cls.id());
        for w in tokenize_words(text).into_iter().take(body) {
            ids.push(self.vocab.id_or_unk(&w));
        }
        ids.push(SpecialToken::Sep.id());
        let real = ids.len();
        ids.resize(self.max_len, SpecialToken::Pad.id());
        let mut attention_mask = vec![0u8; self.max_len];
        attention_mask[..real].fill(1);
        crate::Encoded {
            ids,
            attention_mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_words_splits_and_lowercases() {
        assert_eq!(
            tokenize_words("Pt started Clopidogrel 75mg, stable."),
            vec!["pt", "started", "clopidogrel", "75mg", "stable"]
        );
        assert_eq!(tokenize_words("  "), Vec::<String>::new());
    }

    #[test]
    fn builder_thresholds_by_frequency() {
        let mut b = WordVocabBuilder::new(2);
        b.feed("chest pain chest pain dyspnea");
        assert_eq!(b.distinct_words(), 3);
        let v = b.build();
        assert!(v.id("chest").is_some());
        assert!(v.id("pain").is_some());
        assert!(v.id("dyspnea").is_none(), "below min_count");
    }

    #[test]
    fn builder_orders_by_frequency_then_alpha() {
        let mut b = WordVocabBuilder::new(1);
        b.feed("beta alpha beta gamma alpha beta");
        let v = b.build();
        // beta (3) < alpha (2) < gamma (1), ids after the 5 specials.
        assert_eq!(v.id("beta"), Some(5));
        assert_eq!(v.id("alpha"), Some(6));
        assert_eq!(v.id("gamma"), Some(7));
    }

    #[test]
    fn note_tokenizer_encodes_with_unk_and_padding() {
        let mut b = WordVocabBuilder::new(1);
        b.feed("chest pain admitted");
        let tok = NoteTokenizer::new(b.build(), 8);
        let e = tok.encode("Chest pain, rule-out MI");
        assert_eq!(e.ids.len(), 8);
        assert_eq!(e.ids[0], SpecialToken::Cls.id());
        assert_eq!(e.ids[1], tok.vocab().id("chest").unwrap());
        // "rule", "out", "mi" are unknown.
        assert_eq!(e.ids[3], SpecialToken::Unk.id());
        assert!(e.attention_mask.iter().filter(|&&m| m == 1).count() >= 6);
    }

    #[test]
    fn note_truncation_keeps_leading_words() {
        let mut b = WordVocabBuilder::new(1);
        b.feed("a b c d e f");
        let tok = NoteTokenizer::new(b.build(), 5); // room for 3 words
        let e = tok.encode("a b c d e f");
        assert_eq!(e.ids[1], tok.vocab().id("a").unwrap());
        assert_eq!(e.ids[3], tok.vocab().id("c").unwrap());
        assert_eq!(e.ids[4], SpecialToken::Sep.id());
    }

    #[test]
    #[should_panic(expected = "min_count")]
    fn zero_min_count_panics() {
        WordVocabBuilder::new(0);
    }
}
