//! # clinfl-text
//!
//! Text substrate for the `clinfl` clinical federated-learning stack:
//! vocabulary management, a clinical-event tokenizer, BERT-style
//! masked-language-model (MLM) masking, and batch assembly.
//!
//! The paper (*Multi-Site Clinical Federated Learning using Recursive and
//! Attentive Models and NVFlare*, ICDCS 2023) models patient records as
//! token sequences of prescription and diagnosis codes (following its
//! reference \[13\], Lee et al., MLHC 2022) and pretrains BERT with the MLM
//! objective at masking probability `p = 0.15`, where 10% of the selected
//! tokens are left unmasked but still included in the loss. This crate
//! implements exactly those mechanics.
//!
//! ```
//! use clinfl_text::{Vocab, ClinicalTokenizer, MlmMasker};
//!
//! let vocab = Vocab::from_tokens(["RX:CLOPIDOGREL", "DX:I21", "RX:OMEPRAZOLE"]);
//! let tok = ClinicalTokenizer::new(vocab, 8);
//! let enc = tok.encode(&["RX:CLOPIDOGREL", "DX:I21"]);
//! assert_eq!(enc.ids.len(), 8); // [CLS] … [SEP] + padding
//!
//! let masker = MlmMasker::default();
//! let masked = masker.mask(&enc.ids, tok.vocab(), 42);
//! assert_eq!(masked.input_ids.len(), masked.labels.len());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod masking;
mod tokenizer;
mod vocab;
mod words;

pub use masking::{MaskedSequence, MlmMasker};
pub use tokenizer::{ClinicalTokenizer, Encoded};
pub use vocab::{SpecialToken, Vocab};
pub use words::{tokenize_words, NoteTokenizer, WordVocabBuilder};

/// Target value that excludes a position from loss computation, matching
/// the conventional `ignore_index` of cross-entropy implementations.
pub const IGNORE_INDEX: i32 = -100;
