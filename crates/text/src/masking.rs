//! BERT-style masked-language-model input corruption.

use crate::vocab::{SpecialToken, Vocab};
use crate::IGNORE_INDEX;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A masked training example produced by [`MlmMasker::mask`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaskedSequence {
    /// Corrupted input ids fed to the model.
    pub input_ids: Vec<u32>,
    /// Per-position targets: the original token id at selected positions,
    /// [`IGNORE_INDEX`] everywhere else.
    pub labels: Vec<i32>,
}

impl MaskedSequence {
    /// Number of positions that participate in the loss.
    pub fn num_targets(&self) -> usize {
        self.labels.iter().filter(|&&l| l != IGNORE_INDEX).count()
    }
}

/// The masked-language-model corruption procedure from BERT, with the
/// paper's parameters as defaults.
///
/// Each non-special position is independently selected with probability
/// `select_prob` (paper: 0.15). A selected position is then, per the BERT
/// recipe the paper follows:
///
/// * replaced by `[MASK]` with probability `mask_frac` (0.8),
/// * replaced by a random regular token with probability `random_frac` (0.1),
/// * **left unchanged but still included in the loss** with the remaining
///   probability (0.1) — the paper's "10% of the tokens were not masked but
///   were included in the loss calculation".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MlmMasker {
    /// Probability a position is selected for prediction (paper: 0.15).
    pub select_prob: f32,
    /// Fraction of selected positions replaced by `[MASK]`.
    pub mask_frac: f32,
    /// Fraction of selected positions replaced by a random token.
    pub random_frac: f32,
}

impl Default for MlmMasker {
    fn default() -> Self {
        MlmMasker {
            select_prob: 0.15,
            mask_frac: 0.8,
            random_frac: 0.1,
        }
    }
}

impl MlmMasker {
    /// Creates a masker with a custom selection probability and the
    /// standard 80/10/10 split.
    ///
    /// # Panics
    ///
    /// Panics if `select_prob` is outside `(0, 1]`.
    pub fn with_select_prob(select_prob: f32) -> Self {
        assert!(
            select_prob > 0.0 && select_prob <= 1.0,
            "select_prob must be in (0, 1], got {select_prob}"
        );
        MlmMasker {
            select_prob,
            ..MlmMasker::default()
        }
    }

    /// Applies MLM corruption to one sequence, deterministic in `seed`.
    ///
    /// Special tokens (`[CLS]`, `[SEP]`, `[PAD]`, …) are never selected.
    /// If by chance no position is selected, the first regular position is
    /// forcibly selected so every example contributes to the loss (standard
    /// practice to avoid zero-loss batches on short sequences).
    pub fn mask(&self, ids: &[u32], vocab: &Vocab, seed: u64) -> MaskedSequence {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut input_ids = ids.to_vec();
        let mut labels = vec![IGNORE_INDEX; ids.len()];
        let regular = vocab.regular_ids();
        let mut any = false;
        let mut first_regular: Option<usize> = None;
        for (i, &id) in ids.iter().enumerate() {
            if vocab.is_special(id) {
                continue;
            }
            if first_regular.is_none() {
                first_regular = Some(i);
            }
            if rng.random::<f32>() >= self.select_prob {
                continue;
            }
            any = true;
            self.corrupt(&mut input_ids, &mut labels, i, id, &regular, &mut rng);
        }
        if !any {
            if let Some(i) = first_regular {
                let id = ids[i];
                self.corrupt(&mut input_ids, &mut labels, i, id, &regular, &mut rng);
            }
        }
        MaskedSequence { input_ids, labels }
    }

    fn corrupt(
        &self,
        input_ids: &mut [u32],
        labels: &mut [i32],
        i: usize,
        original: u32,
        regular: &std::ops::Range<u32>,
        rng: &mut StdRng,
    ) {
        labels[i] = original as i32;
        let roll: f32 = rng.random();
        if roll < self.mask_frac {
            input_ids[i] = SpecialToken::Mask.id();
        } else if roll < self.mask_frac + self.random_frac && regular.start < regular.end {
            input_ids[i] = rng.random_range(regular.clone());
        }
        // else: keep the original token, but labels[i] stays set — the
        // position is included in the loss.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocab {
        Vocab::from_tokens((0..100).map(|i| format!("T{i}")))
    }

    fn ids() -> Vec<u32> {
        // [CLS] t… [SEP] with 64 regular tokens.
        let mut v = vec![SpecialToken::Cls.id()];
        v.extend(5..69u32);
        v.push(SpecialToken::Sep.id());
        v
    }

    #[test]
    fn deterministic_in_seed() {
        let m = MlmMasker::default();
        let v = vocab();
        assert_eq!(m.mask(&ids(), &v, 7), m.mask(&ids(), &v, 7));
    }

    #[test]
    fn specials_never_selected() {
        let m = MlmMasker::with_select_prob(1.0);
        let v = vocab();
        let out = m.mask(&ids(), &v, 1);
        assert_eq!(out.labels[0], IGNORE_INDEX);
        assert_eq!(*out.labels.last().unwrap(), IGNORE_INDEX);
        assert_eq!(out.input_ids[0], SpecialToken::Cls.id());
    }

    #[test]
    fn full_selection_targets_all_regular() {
        let m = MlmMasker::with_select_prob(1.0);
        let v = vocab();
        let out = m.mask(&ids(), &v, 1);
        assert_eq!(out.num_targets(), 64);
    }

    #[test]
    fn selection_rate_close_to_p() {
        let m = MlmMasker::default();
        let v = vocab();
        let mut total = 0usize;
        for seed in 0..200 {
            total += m.mask(&ids(), &v, seed).num_targets();
        }
        let rate = total as f32 / (200.0 * 64.0);
        assert!((rate - 0.15).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn eighty_ten_ten_split_roughly_holds() {
        let m = MlmMasker::with_select_prob(1.0);
        let v = vocab();
        let original = ids();
        let (mut masked, mut random, mut kept) = (0usize, 0usize, 0usize);
        for seed in 0..50 {
            let out = m.mask(&original, &v, seed);
            for (i, &l) in out.labels.iter().enumerate() {
                if l == IGNORE_INDEX {
                    continue;
                }
                if out.input_ids[i] == SpecialToken::Mask.id() {
                    masked += 1;
                } else if out.input_ids[i] == original[i] {
                    kept += 1;
                } else {
                    random += 1;
                }
            }
        }
        let total = (masked + random + kept) as f32;
        assert!((masked as f32 / total - 0.8).abs() < 0.05);
        // A "random" replacement can coincide with the original token, so
        // kept absorbs a small part of random's mass.
        assert!((kept as f32 / total - 0.1).abs() < 0.05);
        assert!((random as f32 / total - 0.1).abs() < 0.05);
    }

    #[test]
    fn labels_hold_original_ids() {
        let m = MlmMasker::with_select_prob(1.0);
        let v = vocab();
        let original = ids();
        let out = m.mask(&original, &v, 3);
        for (i, &l) in out.labels.iter().enumerate() {
            if l != IGNORE_INDEX {
                assert_eq!(l as u32, original[i]);
            }
        }
    }

    #[test]
    fn short_sequence_always_has_a_target() {
        let m = MlmMasker::with_select_prob(0.01);
        let v = vocab();
        let short = vec![SpecialToken::Cls.id(), 5, SpecialToken::Sep.id()];
        for seed in 0..20 {
            assert!(m.mask(&short, &v, seed).num_targets() >= 1);
        }
    }

    #[test]
    fn all_special_sequence_has_no_targets() {
        let m = MlmMasker::default();
        let v = vocab();
        let pads = vec![SpecialToken::Cls.id(), SpecialToken::Sep.id(), 0, 0];
        assert_eq!(m.mask(&pads, &v, 5).num_targets(), 0);
    }

    #[test]
    #[should_panic(expected = "select_prob")]
    fn zero_select_prob_panics() {
        MlmMasker::with_select_prob(0.0);
    }
}
