//! Clinical-event tokenizer: code sequences → fixed-length id sequences.

use crate::vocab::{SpecialToken, Vocab};

/// A tokenized sequence: ids plus an attention mask.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Encoded {
    /// Token ids, exactly `max_len` long (`[CLS] events… [SEP] [PAD]…`).
    pub ids: Vec<u32>,
    /// 1 for real tokens (incl. `[CLS]`/`[SEP]`), 0 for padding.
    pub attention_mask: Vec<u8>,
}

impl Encoded {
    /// Number of non-padding positions.
    pub fn real_len(&self) -> usize {
        self.attention_mask.iter().filter(|&&m| m == 1).count()
    }
}

/// Tokenizer for clinical event sequences (prescription / diagnosis codes).
///
/// Unlike natural-language BERT, clinical-code models (paper ref. \[13\])
/// treat each event code as one token, so no sub-word segmentation is
/// needed. Sequences are wrapped as `[CLS] e1 e2 … [SEP]`, truncated to
/// keep the **most recent** events (the clinically informative ones for
/// outcome prediction), and padded to `max_len`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ClinicalTokenizer {
    vocab: Vocab,
    max_len: usize,
}

impl ClinicalTokenizer {
    /// Creates a tokenizer over `vocab` producing sequences of exactly
    /// `max_len` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `max_len < 3` (no room for `[CLS]`, one event, `[SEP]`).
    pub fn new(vocab: Vocab, max_len: usize) -> Self {
        assert!(max_len >= 3, "max_len must be at least 3, got {max_len}");
        ClinicalTokenizer { vocab, max_len }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Mutable access to the vocabulary (e.g. to extend it while building a
    /// corpus before any encoding happens).
    pub fn vocab_mut(&mut self) -> &mut Vocab {
        &mut self.vocab
    }

    /// The fixed output length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Encodes a sequence of event-code strings.
    ///
    /// Unknown codes map to `[UNK]`. If the sequence is longer than fits,
    /// the **earliest** events are dropped.
    pub fn encode<S: AsRef<str>>(&self, events: &[S]) -> Encoded {
        let ids: Vec<u32> = events
            .iter()
            .map(|e| self.vocab.id_or_unk(e.as_ref()))
            .collect();
        self.encode_ids(&ids)
    }

    /// Encodes pre-looked-up event ids (no `[UNK]` mapping applied).
    pub fn encode_ids(&self, event_ids: &[u32]) -> Encoded {
        let body = self.max_len - 2;
        let start = event_ids.len().saturating_sub(body);
        let kept = &event_ids[start..];
        let mut ids = Vec::with_capacity(self.max_len);
        ids.push(SpecialToken::Cls.id());
        ids.extend_from_slice(kept);
        ids.push(SpecialToken::Sep.id());
        let real = ids.len();
        ids.resize(self.max_len, SpecialToken::Pad.id());
        let mut attention_mask = vec![0u8; self.max_len];
        attention_mask[..real].fill(1);
        Encoded {
            ids,
            attention_mask,
        }
    }

    /// Decodes ids back to surface forms, skipping padding.
    pub fn decode(&self, ids: &[u32]) -> Vec<String> {
        ids.iter()
            .filter(|&&id| id != SpecialToken::Pad.id())
            .map(|&id| {
                self.vocab
                    .token(id)
                    .unwrap_or(SpecialToken::Unk.as_str())
                    .to_string()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok() -> ClinicalTokenizer {
        ClinicalTokenizer::new(Vocab::from_tokens(["A", "B", "C", "D"]), 6)
    }

    #[test]
    fn wraps_with_cls_sep_and_pads() {
        let e = tok().encode(&["A", "B"]);
        assert_eq!(e.ids, vec![2, 5, 6, 3, 0, 0]);
        assert_eq!(e.attention_mask, vec![1, 1, 1, 1, 0, 0]);
        assert_eq!(e.real_len(), 4);
    }

    #[test]
    fn truncation_keeps_most_recent() {
        // max_len 6 → body 4; "A B C D A B" keeps "C D A B".
        let e = tok().encode(&["A", "B", "C", "D", "A", "B"]);
        assert_eq!(e.ids, vec![2, 7, 8, 5, 6, 3]);
        assert_eq!(e.real_len(), 6);
    }

    #[test]
    fn unknown_becomes_unk() {
        let e = tok().encode(&["ZZZ"]);
        assert_eq!(e.ids[1], SpecialToken::Unk.id());
    }

    #[test]
    fn empty_sequence_is_cls_sep() {
        let e = tok().encode::<&str>(&[]);
        assert_eq!(e.ids[..2], [2, 3]);
        assert_eq!(e.real_len(), 2);
    }

    #[test]
    fn decode_skips_padding() {
        let e = tok().encode(&["A"]);
        assert_eq!(tok().decode(&e.ids), vec!["[CLS]", "A", "[SEP]"]);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_max_len_panics() {
        ClinicalTokenizer::new(Vocab::new(), 2);
    }
}
