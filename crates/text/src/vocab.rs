//! Token vocabulary with the five BERT special tokens.

use std::collections::HashMap;

/// The special tokens every [`Vocab`] contains, at fixed ids `0..=4`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpecialToken {
    /// Padding (`[PAD]`, id 0).
    Pad,
    /// Unknown token (`[UNK]`, id 1).
    Unk,
    /// Sequence-start / classification token (`[CLS]`, id 2).
    Cls,
    /// Sequence separator (`[SEP]`, id 3).
    Sep,
    /// MLM mask token (`[MASK]`, id 4).
    Mask,
}

impl SpecialToken {
    /// The token id (stable across all vocabularies).
    pub fn id(self) -> u32 {
        match self {
            SpecialToken::Pad => 0,
            SpecialToken::Unk => 1,
            SpecialToken::Cls => 2,
            SpecialToken::Sep => 3,
            SpecialToken::Mask => 4,
        }
    }

    /// The surface form, e.g. `"[PAD]"`.
    pub fn as_str(self) -> &'static str {
        match self {
            SpecialToken::Pad => "[PAD]",
            SpecialToken::Unk => "[UNK]",
            SpecialToken::Cls => "[CLS]",
            SpecialToken::Sep => "[SEP]",
            SpecialToken::Mask => "[MASK]",
        }
    }

    /// All special tokens in id order.
    pub fn all() -> [SpecialToken; 5] {
        [
            SpecialToken::Pad,
            SpecialToken::Unk,
            SpecialToken::Cls,
            SpecialToken::Sep,
            SpecialToken::Mask,
        ]
    }
}

/// A token vocabulary mapping surface forms to dense ids.
///
/// Ids `0..=4` are always the [`SpecialToken`]s; regular tokens follow in
/// insertion order, making vocabulary construction deterministic — a
/// requirement for federated sites to agree on the token space.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Vocab {
    /// Creates a vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut v = Vocab {
            tokens: Vec::new(),
            index: HashMap::new(),
        };
        for s in SpecialToken::all() {
            v.push(s.as_str().to_string());
        }
        v
    }

    /// Builds a vocabulary from an iterator of token strings (duplicates
    /// are fine and keep their first-seen id).
    pub fn from_tokens<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut v = Vocab::new();
        for t in tokens {
            v.add(t.as_ref());
        }
        v
    }

    fn push(&mut self, token: String) -> u32 {
        let id = self.tokens.len() as u32;
        self.index.insert(token.clone(), id);
        self.tokens.push(token);
        id
    }

    /// Adds a token if absent; returns its id either way.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.index.get(token) {
            id
        } else {
            self.push(token.to_string())
        }
    }

    /// Looks up a token id, falling back to `[UNK]`.
    pub fn id_or_unk(&self, token: &str) -> u32 {
        self.index
            .get(token)
            .copied()
            .unwrap_or(SpecialToken::Unk.id())
    }

    /// Looks up a token id.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// The surface form for an id, if in range.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.tokens.get(id as usize).map(String::as_str)
    }

    /// Total vocabulary size including special tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Always false (a vocabulary at least contains the special tokens).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of special tokens at the front of the id space.
    pub fn num_special(&self) -> usize {
        SpecialToken::all().len()
    }

    /// True if `id` refers to a special token.
    pub fn is_special(&self, id: u32) -> bool {
        (id as usize) < self.num_special()
    }

    /// Ids of regular (non-special) tokens, useful for drawing random
    /// replacement tokens during MLM masking.
    pub fn regular_ids(&self) -> std::ops::Range<u32> {
        self.num_special() as u32..self.len() as u32
    }

    /// Rebuilds the internal hash index (needed after deserialization,
    /// which skips the index).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Vocab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        let v = Vocab::new();
        assert_eq!(v.len(), 5);
        assert_eq!(v.id("[PAD]"), Some(0));
        assert_eq!(v.id("[MASK]"), Some(4));
        assert_eq!(SpecialToken::Cls.id(), 2);
        assert!(v.is_special(0));
        assert!(!v.is_special(5));
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.add("RX:ASPIRIN");
        let b = v.add("RX:ASPIRIN");
        assert_eq!(a, b);
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn unknown_maps_to_unk() {
        let v = Vocab::from_tokens(["A"]);
        assert_eq!(v.id_or_unk("A"), 5);
        assert_eq!(v.id_or_unk("NOPE"), SpecialToken::Unk.id());
    }

    #[test]
    fn token_roundtrip() {
        let v = Vocab::from_tokens(["A", "B"]);
        assert_eq!(v.token(5), Some("A"));
        assert_eq!(v.token(6), Some("B"));
        assert_eq!(v.token(99), None);
    }

    #[test]
    fn regular_ids_range() {
        let v = Vocab::from_tokens(["A", "B", "C"]);
        assert_eq!(v.regular_ids(), 5..8);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let v = Vocab::from_tokens(["A", "B"]);
        // Simulate a deserialized vocab: clone tokens, empty index.
        let mut v2 = Vocab {
            tokens: v.tokens.clone(),
            index: HashMap::new(),
        };
        v2.rebuild_index();
        assert_eq!(v2.id("B"), Some(6));
    }
}
