//! Property-based gradient checks over every differentiable op.

use clinfl_tensor::{gradcheck, Graph, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_broadcast_row_grad(seed in 0u64..1000) {
        let x = Tensor::randn(&[3, 4], 1.0, seed);
        let b = Tensor::randn(&[4], 1.0, seed ^ 1);
        let r = gradcheck(&[x, b], |g, v| {
            let s = g.add(v[0], v[1]);
            let sq = g.mul(s, s);
            g.sum(sq)
        });
        prop_assert!(r.passes(2e-2), "{r:?}");
    }

    #[test]
    fn sub_scalar_broadcast_grad(seed in 0u64..1000) {
        let x = Tensor::randn(&[2, 3], 1.0, seed);
        let c = Tensor::randn(&[1], 1.0, seed ^ 2);
        let r = gradcheck(&[x, c], |g, v| {
            let s = g.sub(v[0], v[1]);
            let t = g.tanh(s);
            g.sum(t)
        });
        prop_assert!(r.passes(2e-2), "{r:?}");
    }

    #[test]
    fn mul_same_shape_grad(seed in 0u64..1000) {
        let x = Tensor::randn(&[6], 1.0, seed);
        let y = Tensor::randn(&[6], 1.0, seed ^ 3);
        let r = gradcheck(&[x, y], |g, v| {
            let m = g.mul(v[0], v[1]);
            g.sum(m)
        });
        prop_assert!(r.passes(2e-2), "{r:?}");
    }

    #[test]
    fn batched_matmul_grad(seed in 0u64..500) {
        let a = Tensor::randn(&[2, 2, 3], 0.8, seed);
        let b = Tensor::randn(&[2, 3, 2], 0.8, seed ^ 4);
        let r = gradcheck(&[a, b], |g, v| {
            let m = g.matmul(v[0], v[1]);
            let sq = g.mul(m, m);
            g.sum(sq)
        });
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn broadcast_rhs_matmul_grad(seed in 0u64..500) {
        let a = Tensor::randn(&[2, 2, 3], 0.8, seed);
        let w = Tensor::randn(&[3, 2], 0.8, seed ^ 5);
        let r = gradcheck(&[a, w], |g, v| {
            let m = g.matmul(v[0], v[1]);
            g.sum(m)
        });
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn transpose_and_swap_grads(seed in 0u64..500) {
        let a = Tensor::randn(&[1, 2, 2, 3], 1.0, seed);
        let r = gradcheck(&[a], |g, v| {
            let s = g.swap_axes12(v[0]);
            let t = g.transpose_last2(s);
            let sq = g.mul(t, t);
            g.sum(sq)
        });
        prop_assert!(r.passes(2e-2), "{r:?}");
    }

    #[test]
    fn select_axis1_grad(seed in 0u64..500, index in 0usize..3) {
        let a = Tensor::randn(&[2, 3, 4], 1.0, seed);
        let r = gradcheck(&[a], |g, v| {
            let s = g.select_axis1(v[0], index);
            let sq = g.mul(s, s);
            g.sum(sq)
        });
        prop_assert!(r.passes(2e-2), "{r:?}");
    }

    #[test]
    fn softmax_weighted_grad(seed in 0u64..500) {
        let x = Tensor::randn(&[2, 5], 1.0, seed);
        let w = Tensor::randn(&[2, 5], 1.0, seed ^ 6);
        let r = gradcheck(&[x, w], |g, v| {
            let s = g.softmax(v[0]);
            let m = g.mul(s, v[1]);
            g.sum(m)
        });
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn log_softmax_grad(seed in 0u64..500) {
        let x = Tensor::randn(&[2, 4], 1.0, seed);
        let w = Tensor::randn(&[2, 4], 1.0, seed ^ 7);
        let r = gradcheck(&[x, w], |g, v| {
            let s = g.log_softmax(v[0]);
            let m = g.mul(s, v[1]);
            g.sum(m)
        });
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn embedding_grad(seed in 0u64..500) {
        let table = Tensor::randn(&[5, 3], 1.0, seed);
        let r = gradcheck(&[table], |g, v| {
            let e = g.embedding(v[0], &[0, 4, 2, 2]);
            let sq = g.mul(e, e);
            g.sum(sq)
        });
        prop_assert!(r.passes(2e-2), "{r:?}");
    }

    #[test]
    fn normalize_affine_stack_grad(seed in 0u64..500) {
        let x = Tensor::randn(&[2, 5], 1.0, seed);
        let gamma = Tensor::randn(&[5], 0.5, seed ^ 8);
        let beta = Tensor::randn(&[5], 0.5, seed ^ 9);
        let r = gradcheck(&[x, gamma, beta], |g, v| {
            let n = g.normalize_last(v[0], 1e-5);
            let s = g.mul(n, v[1]);
            let s = g.add(s, v[2]);
            let sq = g.mul(s, s);
            g.sum(sq)
        });
        prop_assert!(r.passes(5e-2), "{r:?}");
    }

    #[test]
    fn relu_gelu_sigmoid_chain_grad(seed in 0u64..500) {
        let x = Tensor::randn(&[8], 2.0, seed);
        let r = gradcheck(&[x], |g, v| {
            let a = g.relu(v[0]);
            let b = g.gelu(a);
            let c = g.sigmoid(b);
            g.mean(c)
        });
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn scale_neg_add_scalar_grad(seed in 0u64..500, c in -2.0f32..2.0) {
        let x = Tensor::randn(&[5], 1.0, seed);
        let r = gradcheck(&[x], |g, v| {
            let a = g.scale(v[0], c);
            let b = g.neg(a);
            let d = g.add_scalar(b, 0.5);
            let sq = g.mul(d, d);
            g.mean(sq)
        });
        prop_assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn reshape_preserves_grad_flow(seed in 0u64..500) {
        let x = Tensor::randn(&[2, 6], 1.0, seed);
        let r = gradcheck(&[x], |g, v| {
            let a = g.reshape(v[0], &[3, 4]);
            let b = g.reshape(a, &[12]);
            let sq = g.mul(b, b);
            g.sum(sq)
        });
        prop_assert!(r.passes(2e-2), "{r:?}");
    }

    #[test]
    fn concat_slice_gradcheck(seed in 0u64..500) {
        let a = Tensor::randn(&[2, 3], 1.0, seed);
        let b = Tensor::randn(&[2, 2], 1.0, seed ^ 11);
        let r = gradcheck(&[a, b], |g, v| {
            let c = g.concat_last(v[0], v[1]);
            let s = g.slice_last(c, 1, 3);
            let sq = g.mul(s, s);
            g.sum(sq)
        });
        prop_assert!(r.passes(2e-2), "{r:?}");
    }

    #[test]
    fn sum_last_mean_axis1_gradcheck(seed in 0u64..500) {
        let x = Tensor::randn(&[2, 3, 4], 1.0, seed);
        let r = gradcheck(&[x], |g, v| {
            let m = g.mean_axis1(v[0]); // [2, 4]
            let s = g.sum_last(m); // [2]
            let sq = g.mul(s, s);
            g.sum(sq)
        });
        prop_assert!(r.passes(2e-2), "{r:?}");
    }

    #[test]
    fn matmul_forward_matches_reference(
        m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..100,
    ) {
        let a = Tensor::randn(&[m, k], 1.0, seed);
        let b = Tensor::randn(&[k, n], 1.0, seed ^ 10);
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                prop_assert!((c.data()[i * n + j] - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn transpose_is_involution(b in 1usize..3, m in 1usize..5, n in 1usize..5, seed in 0u64..100) {
        let t = Tensor::randn(&[b, m, n], 1.0, seed);
        prop_assert_eq!(t.transposed_last2().transposed_last2(), t);
    }

    #[test]
    fn dropout_eval_mode_deterministic(seed in 0u64..100) {
        let x = Tensor::randn(&[16], 1.0, seed);
        let run = |t: &Tensor| {
            let mut g = Graph::with_seed(seed);
            g.set_training(false);
            let v = g.input(t.clone());
            let d = g.dropout(v, 0.5);
            g.value(d).clone()
        };
        prop_assert_eq!(run(&x), x);
    }
}
