//! Packed-vs-reference GEMM agreement (DESIGN.md §3j).
//!
//! The packed register-blocked kernels are constructed to preserve each
//! output element's floating-point accumulation chain, so these tests pin
//! **bitwise** agreement with the retained naive references wherever that
//! order is preserved (`matmul`, `matmul_at_b` for any initial output;
//! `matmul_a_bt` for a zeroed output — the only way the training stack
//! calls it), and a bounded rounding difference for the one reordered
//! case (`matmul_a_bt` accumulating into a non-zero output, where the
//! reference sums into a local temporary first). A second group pins the
//! batched entry points against loops of single GEMMs.
//!
//! Shapes sweep the degenerate and tile-boundary cases: every dimension
//! draws from {1, 3, MR−1, MR, MR+1, NR−1, NR, NR+1, 257}.

use clinfl_tensor::kernels;
use clinfl_tensor::kernels::{GEMM_MR, GEMM_NR};
use proptest::prelude::*;

/// Tile-boundary dimension grid from the issue: degenerate, odd, around
/// both tile edges, and one larger-than-KC-unaligned prime.
const DIMS: [usize; 9] = [
    1,
    3,
    GEMM_MR - 1,
    GEMM_MR,
    GEMM_MR + 1,
    GEMM_NR - 1,
    GEMM_NR,
    GEMM_NR + 1,
    257,
];

/// Deterministic pseudo-random fill in roughly [-0.5, 0.5].
fn fill(buf: &mut [f32], mut state: u64) {
    state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for v in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
}

fn assert_bits_eq(packed: &[f32], reference: &[f32], what: &str) {
    for (i, (p, r)) in packed.iter().zip(reference).enumerate() {
        assert_eq!(
            p.to_bits(),
            r.to_bits(),
            "{what}: element {i} differs: packed {p} vs reference {r}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `matmul_acc` is bitwise identical to the naive reference for any
    /// initial output contents: the packed kernel loads the output tile
    /// into its accumulators and adds products in ascending-k order, the
    /// same per-element chain as the reference.
    #[test]
    fn matmul_matches_reference_bitwise(
        mi in 0usize..DIMS.len(), ki in 0usize..DIMS.len(), ni in 0usize..DIMS.len(),
        seed in 0u64..1000,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        let mut c0 = vec![0.0f32; m * n];
        fill(&mut a, seed);
        fill(&mut b, seed ^ 0xa5a5);
        fill(&mut c0, seed ^ 0x5a5a);
        let mut packed = c0.clone();
        let mut reference = c0;
        kernels::matmul_acc(&a, &b, &mut packed, m, k, n);
        kernels::matmul_acc_ref(&a, &b, &mut reference, m, k, n);
        assert_bits_eq(&packed, &reference, "matmul");
    }

    /// `matmul_at_b_acc` (transposed LHS, the `dW = xᵀdy` shape) is
    /// bitwise identical to the reference for any initial output.
    #[test]
    fn matmul_at_b_matches_reference_bitwise(
        mi in 0usize..DIMS.len(), ki in 0usize..DIMS.len(), ni in 0usize..DIMS.len(),
        seed in 0u64..1000,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let mut a = vec![0.0f32; k * m];
        let mut b = vec![0.0f32; k * n];
        let mut c0 = vec![0.0f32; m * n];
        fill(&mut a, seed);
        fill(&mut b, seed ^ 0xa5a5);
        fill(&mut c0, seed ^ 0x5a5a);
        let mut packed = c0.clone();
        let mut reference = c0;
        kernels::matmul_at_b_acc(&a, &b, &mut packed, m, k, n);
        kernels::matmul_at_b_acc_ref(&a, &b, &mut reference, m, k, n);
        assert_bits_eq(&packed, &reference, "matmul_at_b");
    }

    /// `matmul_a_bt_acc` (transposed RHS) into a **zeroed** output — the
    /// only way the training stack invokes it — is bitwise identical: a
    /// chain grown from +0.0 equals the reference's local dot product.
    #[test]
    fn matmul_a_bt_zeroed_matches_reference_bitwise(
        mi in 0usize..DIMS.len(), ni in 0usize..DIMS.len(), ki in 0usize..DIMS.len(),
        seed in 0u64..1000,
    ) {
        let (m, n, k) = (DIMS[mi], DIMS[ni], DIMS[ki]);
        let mut a = vec![0.0f32; m * n];
        let mut b = vec![0.0f32; k * n];
        fill(&mut a, seed);
        fill(&mut b, seed ^ 0xa5a5);
        let mut packed = vec![0.0f32; m * k];
        let mut reference = vec![0.0f32; m * k];
        kernels::matmul_a_bt_acc(&a, &b, &mut packed, m, n, k);
        kernels::matmul_a_bt_acc_ref(&a, &b, &mut reference, m, n, k);
        assert_bits_eq(&packed, &reference, "matmul_a_bt (zeroed)");
    }

    /// `matmul_a_bt_acc` into a non-zero output is the one documented
    /// reorder: the reference rounds the dot product separately before
    /// adding it to the output, the packed kernel accumulates on top of
    /// the initial value directly. The results differ by at most a few
    /// roundings at the scale of the accumulated magnitude.
    #[test]
    fn matmul_a_bt_nonzero_bounded_error(
        mi in 0usize..DIMS.len(), ni in 0usize..DIMS.len(), ki in 0usize..DIMS.len(),
        seed in 0u64..1000,
    ) {
        let (m, n, k) = (DIMS[mi], DIMS[ni], DIMS[ki]);
        let mut a = vec![0.0f32; m * n];
        let mut b = vec![0.0f32; k * n];
        let mut c0 = vec![0.0f32; m * k];
        fill(&mut a, seed);
        fill(&mut b, seed ^ 0xa5a5);
        fill(&mut c0, seed ^ 0x5a5a);
        let mut packed = c0.clone();
        let mut reference = c0.clone();
        kernels::matmul_a_bt_acc(&a, &b, &mut packed, m, n, k);
        kernels::matmul_a_bt_acc_ref(&a, &b, &mut reference, m, n, k);
        for i in 0..m * k {
            let (row, col) = (i / k, i % k);
            // Magnitude of everything that flowed through the chain
            // bounds the worst-case rounding difference.
            let mut mag = c0[i].abs();
            for p in 0..n {
                mag += (a[row * n + p] * b[col * n + p]).abs();
            }
            let tol = 4.0 * f32::EPSILON * mag + f32::MIN_POSITIVE;
            let diff = (packed[i] - reference[i]).abs();
            prop_assert!(
                diff <= tol,
                "matmul_a_bt (non-zero init): element {i}: packed {} vs reference {} \
                 (diff {diff:e} > tol {tol:e})",
                packed[i], reference[i]
            );
        }
    }

    /// The batched `matmul` and `a·bᵀ` entry points are bitwise
    /// equivalent to looping single GEMMs over the batch, for both
    /// per-batch and broadcast second operands.
    #[test]
    fn batched_matches_loop_of_gemms(
        lb in 1usize..5, mi in 0usize..6, ki in 0usize..6, ni in 0usize..6,
        broadcast_bit in 0u8..2,
        seed in 0u64..1000,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let broadcast = broadcast_bit == 1;
        let b_items = if broadcast { 1 } else { lb };

        // matmul: c[bi] += a[bi] · b([bi]).
        let mut a = vec![0.0f32; lb * m * k];
        let mut b = vec![0.0f32; b_items * k * n];
        fill(&mut a, seed);
        fill(&mut b, seed ^ 0xa5a5);
        let mut batched = vec![0.0f32; lb * m * n];
        let mut looped = vec![0.0f32; lb * m * n];
        kernels::matmul_batch_acc(&a, &b, &mut batched, lb, m, k, n, broadcast);
        for bi in 0..lb {
            let bb = if broadcast { &b[..] } else { &b[bi * k * n..][..k * n] };
            kernels::matmul_acc(
                &a[bi * m * k..][..m * k], bb,
                &mut looped[bi * m * n..][..m * n], m, k, n,
            );
        }
        assert_bits_eq(&batched, &looped, "matmul_batch vs loop");

        // a·bᵀ: c[bi] += a[bi] · b([bi])ᵀ with a [lb, m, k], b [(lb,) n, k].
        let mut a2 = vec![0.0f32; lb * m * k];
        let mut b2 = vec![0.0f32; b_items * n * k];
        fill(&mut a2, seed ^ 0x1111);
        fill(&mut b2, seed ^ 0x2222);
        let mut batched = vec![0.0f32; lb * m * n];
        let mut looped = vec![0.0f32; lb * m * n];
        kernels::matmul_a_bt_batch_acc(&a2, &b2, &mut batched, lb, m, k, n, broadcast);
        for bi in 0..lb {
            let bb = if broadcast { &b2[..] } else { &b2[bi * n * k..][..n * k] };
            kernels::matmul_a_bt_acc(
                &a2[bi * m * k..][..m * k], bb,
                &mut looped[bi * m * n..][..m * n], m, k, n,
            );
        }
        assert_bits_eq(&batched, &looped, "matmul_a_bt_batch vs loop");
    }

    /// The batched `aᵀ·b` entry point matches looping single GEMMs, both
    /// with per-batch outputs and with one shared accumulator summed over
    /// the batch in ascending order (the broadcast-`dW` gradient shape).
    #[test]
    fn batched_at_b_matches_loop_of_gemms(
        lb in 1usize..5, ri in 0usize..6, mi in 0usize..6, ni in 0usize..6,
        shared_bit in 0u8..2,
        seed in 0u64..1000,
    ) {
        let (rows, m, n) = (DIMS[ri], DIMS[mi], DIMS[ni]);
        let shared = shared_bit == 1;
        let mut a = vec![0.0f32; lb * rows * m];
        let mut b = vec![0.0f32; lb * rows * n];
        fill(&mut a, seed);
        fill(&mut b, seed ^ 0xa5a5);
        let c_items = if shared { 1 } else { lb };
        let mut batched = vec![0.0f32; c_items * m * n];
        let mut looped = vec![0.0f32; c_items * m * n];
        kernels::matmul_at_b_batch_acc(&a, &b, &mut batched, lb, rows, m, n, shared);
        for bi in 0..lb {
            let cb = if shared {
                &mut looped[..]
            } else {
                &mut looped[bi * m * n..][..m * n]
            };
            kernels::matmul_at_b_acc(
                &a[bi * rows * m..][..rows * m],
                &b[bi * rows * n..][..rows * n],
                cb, m, rows, n,
            );
        }
        assert_bits_eq(&batched, &looped, "matmul_at_b_batch vs loop");
    }
}
