//! Parallel kernels must be *bit-identical* to their serial runs: the
//! row-blocked partitioning keeps every output element's accumulation
//! order unchanged, so these tests compare `to_bits()`, not approximate
//! closeness, across odd and degenerate shapes.

use clinfl_tensor::{kernels, pool, Tensor};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that reconfigure the process-global thread budget.
fn config_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` at 1 thread and at 4 threads and asserts the outputs match
/// bit for bit.
fn assert_bit_identical(label: &str, f: impl Fn() -> Vec<f32>) {
    pool::set_threads(1);
    let serial = f();
    pool::set_threads(4);
    let parallel = f();
    assert_eq!(serial.len(), parallel.len(), "{label}: length mismatch");
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s.to_bits(),
            p.to_bits(),
            "{label}: element {i} differs: serial {s} vs parallel {p}"
        );
    }
}

/// Odd, prime-ish, and power-of-two shapes; includes rows below, at, and
/// above typical block boundaries.
const SHAPES: [(usize, usize, usize); 6] = [
    (1, 1, 1),
    (3, 5, 7),
    (17, 31, 13),
    (64, 64, 64),
    (129, 65, 33),
    (2, 512, 19),
];

#[test]
fn matmuls_bit_identical_across_shapes() {
    let _guard = config_lock();
    for &(m, k, n) in &SHAPES {
        let a = Tensor::randn(&[m, k], 1.0, 7 + m as u64);
        let b = Tensor::randn(&[k, n], 1.0, 11 + n as u64);
        assert_bit_identical(&format!("matmul_acc {m}x{k}x{n}"), || {
            let mut c = vec![0.5f32; m * n];
            kernels::matmul_acc(a.data(), b.data(), &mut c, m, k, n);
            c
        });
        let at = Tensor::randn(&[k, m], 1.0, 13 + m as u64);
        assert_bit_identical(&format!("matmul_at_b_acc {m}x{k}x{n}"), || {
            let mut c = vec![0.5f32; m * n];
            kernels::matmul_at_b_acc(at.data(), b.data(), &mut c, m, k, n);
            c
        });
        // matmul_a_bt_acc computes c[m, k'] += a[m, n'] * b[k', n']^T;
        // here n' = k (the contraction dim) and k' = n.
        let bt = Tensor::randn(&[n, k], 1.0, 17 + n as u64);
        assert_bit_identical(&format!("matmul_a_bt_acc {m}x{n}x{k}"), || {
            let mut c = vec![0.5f32; m * n];
            kernels::matmul_a_bt_acc(a.data(), bt.data(), &mut c, m, k, n);
            c
        });
    }
}

#[test]
fn row_kernels_bit_identical_across_widths() {
    let _guard = config_lock();
    for &(rows, width) in &[(1usize, 1usize), (7, 3), (333, 31), (1024, 64), (5, 257)] {
        let x = Tensor::randn(&[rows * width], 2.0, 23 + width as u64);
        assert_bit_identical(&format!("softmax_rows {rows}x{width}"), || {
            let mut d = x.data().to_vec();
            kernels::softmax_rows(&mut d, width);
            d
        });
        assert_bit_identical(&format!("log_softmax_rows {rows}x{width}"), || {
            let mut d = x.data().to_vec();
            kernels::log_softmax_rows(&mut d, width);
            d
        });
        assert_bit_identical(&format!("layer_norm_rows {rows}x{width}"), || {
            let mut d = x.data().to_vec();
            let (means, rstds) = kernels::layer_norm_rows(&mut d, width, 1e-5);
            d.extend(means);
            d.extend(rstds);
            d
        });
    }
}

#[test]
fn backward_kernels_bit_identical() {
    let _guard = config_lock();
    for &(rows, width) in &[(9usize, 5usize), (257, 33), (1024, 128)] {
        let n = rows * width;
        let mut y = Tensor::randn(&[n], 1.0, 31).data().to_vec();
        kernels::softmax_rows(&mut y, width);
        let dy = Tensor::randn(&[n], 1.0, 37);
        assert_bit_identical(&format!("softmax_rows_backward {rows}x{width}"), || {
            let mut dx = vec![0.0f32; n];
            kernels::softmax_rows_backward(&y, dy.data(), &mut dx, width);
            dx
        });
        let mut logy = Tensor::randn(&[n], 1.0, 41).data().to_vec();
        kernels::log_softmax_rows(&mut logy, width);
        assert_bit_identical(&format!("log_softmax_rows_backward {rows}x{width}"), || {
            let mut dx = vec![0.0f32; n];
            kernels::log_softmax_rows_backward(&logy, dy.data(), &mut dx, width);
            dx
        });
    }
}

#[test]
fn elementwise_helpers_bit_identical() {
    let _guard = config_lock();
    let x = Tensor::randn(&[100_003], 3.0, 43);
    assert_bit_identical("map_into(gelu)", || {
        let mut out = vec![0.0f32; x.numel()];
        kernels::map_into(x.data(), &mut out, 32, kernels::gelu);
        out
    });
    let d0 = Tensor::randn(&[100_003], 1.0, 47);
    assert_bit_identical("mul_map_inplace(tanh_fast_grad)", || {
        let mut d = d0.data().to_vec();
        kernels::mul_map_inplace(x.data(), &mut d, 16, kernels::tanh_fast_grad);
        d
    });
}

#[test]
fn batched_matmul_bit_identical() {
    let _guard = config_lock();
    for &(batch, m, k, n) in &[
        (1usize, 5usize, 7usize, 3usize),
        (8, 16, 32, 16),
        (3, 1, 257, 1),
    ] {
        let a = Tensor::randn(&[batch, m, k], 1.0, 53);
        let b = Tensor::randn(&[batch, k, n], 1.0, 59);
        let b2 = Tensor::randn(&[k, n], 1.0, 61);
        assert_bit_identical(&format!("batched matmul {batch}x{m}x{k}x{n}"), || {
            a.matmul(&b).data().to_vec()
        });
        assert_bit_identical(&format!("broadcast matmul {batch}x{m}x{k}x{n}"), || {
            a.matmul(&b2).data().to_vec()
        });
    }
}
