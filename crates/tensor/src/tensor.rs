//! Dense row-major `f32` tensor.

use crate::kernels;
use crate::shape::Shape;
use crate::TensorError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// A dense, row-major, n-dimensional `f32` array.
///
/// `Tensor` is plain data: it carries no gradient information. Automatic
/// differentiation happens on the [`crate::Graph`] tape, which stores
/// `Tensor` values at each node.
///
/// ```
/// use clinfl_tensor::Tensor;
/// let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.matmul(&t).data(), &[7.0, 10.0, 15.0, 22.0]);
/// # Ok::<(), clinfl_tensor::TensorError>(())
/// ```
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the number of elements implied by `dims`.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor from a shape and a backing buffer whose length is
    /// already known to match (e.g. one recycled from the buffer pool).
    pub(crate) fn from_raw(shape: Shape, data: Vec<f32>) -> Self {
        debug_assert_eq!(shape.numel(), data.len(), "from_raw shape/data mismatch");
        Tensor { shape, data }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![v],
        }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Tensor of the given shape filled with `v`.
    pub fn full(dims: &[usize], v: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![v; n],
        }
    }

    /// Tensor with entries drawn i.i.d. from `N(0, std^2)`, deterministic in
    /// `seed`.
    pub fn randn(dims: &[usize], std: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = Shape::new(dims);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        // Box-Muller from uniform samples keeps us independent of
        // rand_distr, which is not in the allowed dependency set.
        let mut i = 0;
        while i < n {
            let u1: f32 = rng.random::<f32>().max(1e-12);
            let u2: f32 = rng.random();
            let r = (-2.0f32 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            i += 1;
            if i < n {
                data.push(r * theta.sin() * std);
                i += 1;
            }
        }
        Tensor { shape, data }
    }

    /// Tensor with entries drawn i.i.d. from `U(lo, hi)`, deterministic in
    /// `seed`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = Shape::new(dims);
        let n = shape.numel();
        let data = (0..n).map(|_| rng.random_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the backing data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() requires a single-element tensor, got shape {}",
            self.shape
        );
        self.data[0]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshaped(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape from {} to {shape} changes element count",
            self.shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Matrix product supporting batched operands.
    ///
    /// `self` may have rank >= 2 (`[.., M, K]`). `rhs` is either rank-2
    /// (`[K, N]`, broadcast over the batch) or has the same batch dimensions
    /// as `self` (`[.., K, N]`).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or batch mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.matmul_shape(rhs).dims());
        self.matmul_into(rhs, &mut out);
        out
    }

    /// The output shape of `self.matmul(rhs)`, validating the operands.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or batch mismatch (same conditions as
    /// [`Tensor::matmul`]).
    pub(crate) fn matmul_shape(&self, rhs: &Tensor) -> Shape {
        let (lb, _m, k) = self.shape.as_batched_matrix();
        let (rb, rk, n) = rhs.shape.as_batched_matrix();
        assert_eq!(
            k, rk,
            "matmul inner dims differ: {} vs {}",
            self.shape, rhs.shape
        );
        if rhs.shape.rank() != 2 {
            assert_eq!(
                lb, rb,
                "matmul batch dims differ: {} vs {}",
                self.shape, rhs.shape
            );
        }
        self.shape.with_last(n)
    }

    /// Batched matrix product accumulated into `out`, which must have the
    /// shape from [`Tensor::matmul_shape`] and be pre-zeroed (the kernel
    /// accumulates). Lets callers supply a recycled output buffer.
    pub(crate) fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        let (lb, m, k) = self.shape.as_batched_matrix();
        let n = rhs.shape.last_dim();
        let rhs_broadcast = rhs.shape.rank() == 2;
        debug_assert_eq!(out.numel(), lb * m * n, "matmul_into out size");
        if out.numel() == 0 || k == 0 {
            return;
        }
        // One batched kernel entry: a broadcast RHS is packed once for the
        // whole batch; per-batch right-hand sides parallelize over batch
        // blocks inside the kernel.
        kernels::matmul_batch_acc(
            &self.data,
            &rhs.data,
            &mut out.data,
            lb,
            m,
            k,
            n,
            rhs_broadcast,
        );
    }

    /// Matrix product with the right operand transposed:
    /// `self[.., M, K] · rhs[.., N, K]ᵀ -> [.., M, N]`, with `rhs` either
    /// rank-2 (broadcast over the batch) or batch-matched. Computed
    /// directly by the packed `a·bᵀ` kernel — no transposed copy of `rhs`
    /// is ever materialized.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or batch mismatch.
    pub fn matmul_bt(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.matmul_bt_shape(rhs).dims());
        self.matmul_bt_into(rhs, &mut out);
        out
    }

    /// The output shape of `self.matmul_bt(rhs)`, validating the operands.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or batch mismatch (same conditions as
    /// [`Tensor::matmul_bt`]).
    pub(crate) fn matmul_bt_shape(&self, rhs: &Tensor) -> Shape {
        let (lb, _m, k) = self.shape.as_batched_matrix();
        let (rb, n, rk) = rhs.shape.as_batched_matrix();
        assert_eq!(
            k, rk,
            "matmul_bt inner dims differ: {} vs {}",
            self.shape, rhs.shape
        );
        if rhs.shape.rank() != 2 {
            assert_eq!(
                lb, rb,
                "matmul_bt batch dims differ: {} vs {}",
                self.shape, rhs.shape
            );
        }
        self.shape.with_last(n)
    }

    /// Batched `self · rhsᵀ` accumulated into `out` (shape from
    /// [`Tensor::matmul_bt_shape`], pre-zeroed).
    pub(crate) fn matmul_bt_into(&self, rhs: &Tensor, out: &mut Tensor) {
        let (lb, m, k) = self.shape.as_batched_matrix();
        let (_, n, _) = rhs.shape.as_batched_matrix();
        let rhs_broadcast = rhs.shape.rank() == 2;
        debug_assert_eq!(out.numel(), lb * m * n, "matmul_bt_into out size");
        if out.numel() == 0 || k == 0 {
            return;
        }
        kernels::matmul_a_bt_batch_acc(
            &self.data,
            &rhs.data,
            &mut out.data,
            lb,
            m,
            k,
            n,
            rhs_broadcast,
        );
    }

    /// Returns the tensor with its last two dimensions transposed.
    ///
    /// # Panics
    ///
    /// Panics if the rank is < 2.
    pub fn transposed_last2(&self) -> Tensor {
        let mut out = vec![0.0f32; self.numel()];
        self.transpose_last2_into(&mut out);
        Tensor {
            shape: self.shape.transposed_last2(),
            data: out,
        }
    }

    /// Writes the last-two-dims transpose into `out` (fully overwriting
    /// it), so callers can supply a recycled buffer.
    ///
    /// # Panics
    ///
    /// Panics if the rank is < 2 or `out` has the wrong length.
    pub(crate) fn transpose_last2_into(&self, out: &mut [f32]) {
        let (b, m, n) = self.shape.as_batched_matrix();
        assert_eq!(out.len(), self.numel(), "transpose out length");
        for bi in 0..b {
            let src = &self.data[bi * m * n..(bi + 1) * m * n];
            let dst = &mut out[bi * m * n..(bi + 1) * m * n];
            for i in 0..m {
                for j in 0..n {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
    }

    /// Swaps axes 1 and 2 of a rank-4 tensor (`[B, S, H, D]` →
    /// `[B, H, S, D]`), the permutation used to split attention heads.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4.
    pub fn swapped_axes12(&self) -> Tensor {
        let mut out = vec![0.0f32; self.numel()];
        self.swap_axes12_into(&mut out);
        Tensor {
            shape: self.shape.swapped_axes12(),
            data: out,
        }
    }

    /// Writes the axes-1/2 permutation into `out` (fully overwriting it),
    /// so callers can supply a recycled buffer.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4 or `out` has the wrong length.
    pub(crate) fn swap_axes12_into(&self, out: &mut [f32]) {
        let dims = self.dims();
        assert_eq!(dims.len(), 4, "swapped_axes12 requires rank-4 input");
        assert_eq!(out.len(), self.numel(), "swap_axes12 out length");
        let (b, s, h, d) = (dims[0], dims[1], dims[2], dims[3]);
        for bi in 0..b {
            for si in 0..s {
                for hi in 0..h {
                    let src = &self.data[((bi * s + si) * h + hi) * d..][..d];
                    let dst = &mut out[((bi * h + hi) * s + si) * d..][..d];
                    dst.copy_from_slice(src);
                }
            }
        }
    }

    /// Element-wise map, parallel across the worker pool for large tensors.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut data = vec![0.0f32; self.data.len()];
        kernels::map_into(&self.data, &mut data, 16, f);
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// Element-wise addition of same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// Element-wise subtraction of same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// Scales every element by `c`.
    pub fn scaled(&self, c: f32) -> Tensor {
        self.map(|v| v * c)
    }

    /// In-place `self += rhs * c` (axpy). Used by optimizers and aggregators.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, c: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += c * b;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum element in each row of the trailing dimension.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let width = self.shape.last_dim();
        self.data
            .chunks(width)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// True if every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let n = self.numel().min(8);
        write!(f, "[")?;
        for (i, v) in self.data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.numel() > n {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 4]).is_ok());
        let err = Tensor::from_vec(&[2, 2], vec![0.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 3]).numel(), 6);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0, 1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 7.0).data(), &[7.0, 7.0]);
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn randn_is_deterministic_and_roughly_normal() {
        let a = Tensor::randn(&[1000], 1.0, 7);
        let b = Tensor::randn(&[1000], 1.0, 7);
        assert_eq!(a, b);
        let mean = a.mean();
        let var = a
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 1000.0;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 1.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn rand_uniform_bounds() {
        let t = Tensor::rand_uniform(&[500], -2.0, 3.0, 1);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn matmul_batched_rhs_broadcast() {
        // Batch of two 1x2 matrices times a shared 2x1.
        let a = Tensor::from_vec(&[2, 1, 2], vec![1., 2., 3., 4.]).unwrap();
        let w = Tensor::from_vec(&[2, 1], vec![10., 100.]).unwrap();
        let c = a.matmul(&w);
        assert_eq!(c.dims(), &[2, 1, 1]);
        assert_eq!(c.data(), &[210., 430.]);
    }

    #[test]
    fn matmul_batched_both() {
        let a = Tensor::from_vec(&[2, 1, 2], vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_vec(&[2, 2, 1], vec![1., 1., 2., 2.]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 1, 1]);
        assert_eq!(c.data(), &[3., 14.]);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = t.transposed_last2();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.data(), &[1., 4., 2., 5., 3., 6.]);
        assert_eq!(tt.transposed_last2(), t);
    }

    #[test]
    fn argmax_rows_basic() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.0, 5.0, 1.0, 2.0]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn axpy_and_norms() {
        let mut a = Tensor::from_vec(&[2], vec![3.0, 4.0]).unwrap();
        assert_eq!(a.l2_norm(), 5.0);
        let b = Tensor::from_vec(&[2], vec![1.0, 1.0]).unwrap();
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[5.0, 6.0]);
        a.zero_();
        assert_eq!(a.data(), &[0.0, 0.0]);
    }

    #[test]
    fn serde_roundtrip_display() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let shown = t.to_string();
        assert!(shown.contains("Tensor[2, 2]"), "{shown}");
    }

    #[test]
    fn tensor_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Tensor>();
        assert_sync::<Tensor>();
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[3]);
        assert!(t.all_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.all_finite());
    }
}
