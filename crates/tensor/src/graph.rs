//! The autograd tape: forward-op construction and reverse-mode backward.

use crate::kernels;
use crate::ops::{accumulate, backward_node, Broadcast, Node, Op};
use crate::optim::{ParamId, Params};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Handle to a node on a [`Graph`] tape.
///
/// A `Var` is only meaningful for the graph that produced it; using it with
/// another graph is a logic error (caught by index panics in debug).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// A reverse-mode automatic-differentiation tape.
///
/// A `Graph` is built fresh for every forward pass (the "define-by-run"
/// style): each operation appends a node holding its result, and
/// [`Graph::backward`] walks the tape in reverse applying each node's
/// gradient rule. Parameters enter the graph via [`Graph::param`], and their
/// gradients are exported back to the [`Params`] store with
/// [`Graph::grads_into`].
///
/// # Example
///
/// ```
/// use clinfl_tensor::{Graph, Tensor};
/// let mut g = Graph::new();
/// let x = g.input(Tensor::from_vec(&[2], vec![3.0, 4.0])?);
/// let sq = g.mul(x, x);
/// let loss = g.sum(sq); // x0^2 + x1^2
/// g.backward(loss);
/// assert_eq!(g.grad(x).unwrap().data(), &[6.0, 8.0]); // d/dx = 2x
/// # Ok::<(), clinfl_tensor::TensorError>(())
/// ```
#[derive(Debug)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    param_links: Vec<(usize, ParamId)>,
    training: bool,
    rng: StdRng,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape in training mode (dropout active) with a fixed
    /// default seed for dropout masks.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            grads: Vec::new(),
            param_links: Vec::new(),
            training: true,
            rng: StdRng::seed_from_u64(0x5eed),
        }
    }

    /// Creates an empty tape with an explicit dropout seed.
    pub fn with_seed(seed: u64) -> Self {
        Graph {
            rng: StdRng::seed_from_u64(seed),
            ..Graph::new()
        }
    }

    /// Switches between training mode (dropout active) and evaluation mode
    /// (dropout is the identity).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the tape is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, inputs: Vec<usize>, value: Tensor) -> Var {
        self.nodes.push(Node { op, inputs, value });
        Var(self.nodes.len() - 1)
    }

    /// Forward value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Gradient of a leaf variable after [`Graph::backward`]; `None` if the
    /// variable did not receive a gradient.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Adds a constant input (leaf) to the tape.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(Op::Leaf, vec![], t)
    }

    /// Adds a parameter (leaf) to the tape, copying its current value from
    /// the store and remembering the link so [`Graph::grads_into`] can route
    /// the gradient back.
    pub fn param(&mut self, params: &Params, id: ParamId) -> Var {
        let v = self.push(Op::Leaf, vec![], params.value(id).clone());
        self.param_links.push((v.0, id));
        v
    }

    // ------------------------------------------------------------------
    // Element-wise & scalar ops
    // ------------------------------------------------------------------

    fn broadcast_kind(&self, a: Var, b: Var, what: &str) -> Broadcast {
        let sa = self.nodes[a.0].value.shape();
        let sb = self.nodes[b.0].value.shape();
        if sa == sb {
            Broadcast::None
        } else if sb.numel() == 1 {
            Broadcast::Scalar
        } else if sb.rank() == 1 && sb.last_dim() == sa.last_dim() {
            Broadcast::Row
        } else {
            panic!("{what}: cannot broadcast {sb} onto {sa}");
        }
    }

    fn apply_broadcast(
        a: &Tensor,
        b: &Tensor,
        bcast: Broadcast,
        f: impl Fn(f32, f32) -> f32,
    ) -> Tensor {
        let mut out = a.clone();
        match bcast {
            Broadcast::None => {
                for (o, &bv) in out.data_mut().iter_mut().zip(b.data()) {
                    *o = f(*o, bv);
                }
            }
            Broadcast::Scalar => {
                let bv = b.data()[0];
                for o in out.data_mut() {
                    *o = f(*o, bv);
                }
            }
            Broadcast::Row => {
                let width = a.shape().last_dim();
                for row in out.data_mut().chunks_mut(width) {
                    for (o, &bv) in row.iter_mut().zip(b.data()) {
                        *o = f(*o, bv);
                    }
                }
            }
        }
        out
    }

    /// `a + b`. `b` may be the same shape, a scalar, or a last-dim vector.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let bcast = self.broadcast_kind(a, b, "add");
        let value = Self::apply_broadcast(
            &self.nodes[a.0].value,
            &self.nodes[b.0].value,
            bcast,
            |x, y| x + y,
        );
        self.push(Op::Add(bcast), vec![a.0, b.0], value)
    }

    /// `a - b`, with the same broadcasting rules as [`Graph::add`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let bcast = self.broadcast_kind(a, b, "sub");
        let value = Self::apply_broadcast(
            &self.nodes[a.0].value,
            &self.nodes[b.0].value,
            bcast,
            |x, y| x - y,
        );
        self.push(Op::Sub(bcast), vec![a.0, b.0], value)
    }

    /// Element-wise `a * b`, with the same broadcasting rules as
    /// [`Graph::add`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let bcast = self.broadcast_kind(a, b, "mul");
        let value = Self::apply_broadcast(
            &self.nodes[a.0].value,
            &self.nodes[b.0].value,
            bcast,
            |x, y| x * y,
        );
        self.push(Op::Mul(bcast), vec![a.0, b.0], value)
    }

    /// `-a`.
    pub fn neg(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.scaled(-1.0);
        self.push(Op::Neg, vec![a.0], value)
    }

    /// `a * c` for a constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let value = self.nodes[a.0].value.scaled(c);
        self.push(Op::Scale(c), vec![a.0], value)
    }

    /// `a + c` for a constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.nodes[a.0].value.map(|v| v + c);
        self.push(Op::AddScalar, vec![a.0], value)
    }

    // ------------------------------------------------------------------
    // Linear algebra & shape
    // ------------------------------------------------------------------

    /// Batched matrix product (see [`Tensor::matmul`] for the shape rules).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or batch mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let rhs_broadcast =
            self.nodes[b.0].value.shape().rank() == 2 && self.nodes[a.0].value.shape().rank() > 2;
        self.push(Op::Matmul { rhs_broadcast }, vec![a.0, b.0], value)
    }

    /// Transposes the last two dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the rank is < 2.
    pub fn transpose_last2(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.transposed_last2();
        self.push(Op::TransposeLast2, vec![a.0], value)
    }

    /// Swaps axes 1 and 2 of a rank-4 tensor (`[B, S, H, D]` →
    /// `[B, H, S, D]`), used to split/merge attention heads.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4.
    pub fn swap_axes12(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.swapped_axes12();
        self.push(Op::SwapAxes12, vec![a.0], value)
    }

    /// Reshapes to `dims` (same element count).
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    pub fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        let value = self.nodes[a.0].value.reshaped(dims);
        self.push(Op::Reshape, vec![a.0], value)
    }

    /// Selects `[:, index, :]` from a rank-3 tensor (`[B, S, H] -> [B, H]`),
    /// e.g. the `[CLS]` position.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-3 or `index` is out of bounds.
    pub fn select_axis1(&mut self, a: Var, index: usize) -> Var {
        let src = &self.nodes[a.0].value;
        let dims = src.dims();
        assert_eq!(dims.len(), 3, "select_axis1 requires rank-3 input");
        let (b, s, h) = (dims[0], dims[1], dims[2]);
        assert!(index < s, "select_axis1 index {index} out of bounds {s}");
        let mut out = Tensor::zeros(&[b, h]);
        for bi in 0..b {
            out.data_mut()[bi * h..(bi + 1) * h]
                .copy_from_slice(&src.data()[(bi * s + index) * h..(bi * s + index + 1) * h]);
        }
        self.push(Op::Select { index, axis_len: s }, vec![a.0], out)
    }

    /// Concatenates two tensors along the last dimension. All leading
    /// dimensions must match.
    ///
    /// # Panics
    ///
    /// Panics if the leading dimensions differ.
    pub fn concat_last(&mut self, a: Var, b: Var) -> Var {
        let (sa, sb) = (
            self.nodes[a.0].value.shape().clone(),
            self.nodes[b.0].value.shape().clone(),
        );
        assert_eq!(
            sa.dims()[..sa.rank() - 1],
            sb.dims()[..sb.rank() - 1],
            "concat_last leading dims differ: {sa} vs {sb}"
        );
        let (wa, wb) = (sa.last_dim(), sb.last_dim());
        let mut dims = sa.dims().to_vec();
        *dims.last_mut().expect("rank >= 1") = wa + wb;
        let mut out = Tensor::zeros(&dims);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        for ((row, ra), rb) in out
            .data_mut()
            .chunks_mut(wa + wb)
            .zip(av.data().chunks(wa))
            .zip(bv.data().chunks(wb))
        {
            row[..wa].copy_from_slice(ra);
            row[wa..].copy_from_slice(rb);
        }
        self.push(Op::ConcatLast, vec![a.0, b.0], out)
    }

    /// Takes columns `start..start+len` of the last dimension.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the last dimension.
    pub fn slice_last(&mut self, a: Var, start: usize, len: usize) -> Var {
        let src = &self.nodes[a.0].value;
        let width = src.shape().last_dim();
        assert!(
            start + len <= width && len > 0,
            "slice_last {start}..{} out of 0..{width}",
            start + len
        );
        let mut dims = src.dims().to_vec();
        *dims.last_mut().expect("rank >= 1") = len;
        let mut out = Tensor::zeros(&dims);
        for (orow, srow) in out.data_mut().chunks_mut(len).zip(src.data().chunks(width)) {
            orow.copy_from_slice(&srow[start..start + len]);
        }
        self.push(
            Op::SliceLast {
                start,
                src_width: width,
            },
            vec![a.0],
            out,
        )
    }

    /// Sums over the last dimension (`[.., D]` → `[..]`).
    pub fn sum_last(&mut self, a: Var) -> Var {
        let src = &self.nodes[a.0].value;
        let width = src.shape().last_dim().max(1);
        let dims: Vec<usize> = src.dims()[..src.dims().len().saturating_sub(1)].to_vec();
        let data: Vec<f32> = src.data().chunks(width).map(|r| r.iter().sum()).collect();
        let out = Tensor::from_vec(&dims, data).expect("sum_last shape");
        self.push(Op::SumLast, vec![a.0], out)
    }

    /// Mean over axis 1 of a rank-3 tensor (`[B, S, H]` → `[B, H]`):
    /// sequence mean pooling.
    ///
    /// # Panics
    ///
    /// Panics unless the input is rank-3.
    pub fn mean_axis1(&mut self, a: Var) -> Var {
        let src = &self.nodes[a.0].value;
        let dims = src.dims();
        assert_eq!(dims.len(), 3, "mean_axis1 requires rank-3 input");
        let (b, s, h) = (dims[0], dims[1], dims[2]);
        let mut out = Tensor::zeros(&[b, h]);
        for bi in 0..b {
            let orow = &mut out.data_mut()[bi * h..(bi + 1) * h];
            for si in 0..s {
                let srow = &src.data()[(bi * s + si) * h..(bi * s + si + 1) * h];
                for (o, &v) in orow.iter_mut().zip(srow) {
                    *o += v;
                }
            }
            for o in orow.iter_mut() {
                *o /= s as f32;
            }
        }
        self.push(Op::MeanAxis1 { axis_len: s }, vec![a.0], out)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.nodes[a.0].value.sum());
        self.push(Op::Sum, vec![a.0], value)
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.nodes[a.0].value.mean());
        self.push(Op::Mean, vec![a.0], value)
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Softmax over the last dimension.
    pub fn softmax(&mut self, a: Var) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        let width = value.shape().last_dim();
        kernels::softmax_rows(value.data_mut(), width);
        self.push(Op::Softmax, vec![a.0], value)
    }

    /// Log-softmax over the last dimension.
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        let width = value.shape().last_dim();
        kernels::log_softmax_rows(value.data_mut(), width);
        self.push(Op::LogSoftmax, vec![a.0], value)
    }

    /// `tanh(a)` (fast Padé approximation; see
    /// [`kernels::tanh_fast`](crate::kernels::tanh_fast)).
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(kernels::tanh_fast);
        self.push(Op::Tanh, vec![a.0], value)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(kernels::sigmoid);
        self.push(Op::Sigmoid, vec![a.0], value)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|v| v.max(0.0));
        self.push(Op::Relu, vec![a.0], value)
    }

    /// GELU (tanh approximation, as in BERT).
    pub fn gelu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(kernels::gelu);
        self.push(Op::Gelu, vec![a.0], value)
    }

    /// Inverted dropout with probability `p`. Identity in evaluation mode.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1)`.
    pub fn dropout(&mut self, a: Var, p: f32) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        if !self.training || p == 0.0 {
            return a;
        }
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let n = self.nodes[a.0].value.numel();
        // Mask generation is on the hot path (every activation tensor in a
        // transformer); a xorshift64* stream seeded from the graph RNG is
        // an order of magnitude faster than drawing each element from
        // StdRng while remaining deterministic per graph seed.
        let mut state: u64 = self.rng.random::<u64>() | 1;
        let threshold = (keep as f64 * (1u64 << 32) as f64) as u64;
        let mask: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if (state >> 32) < threshold {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mut value = self.nodes[a.0].value.clone();
        for (v, &m) in value.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.push(Op::Dropout { mask }, vec![a.0], value)
    }

    // ------------------------------------------------------------------
    // NN-specific ops
    // ------------------------------------------------------------------

    /// Gathers rows of an embedding table.
    ///
    /// `table` must be a `[V, H]` matrix; the output is `[ids.len(), H]`
    /// (callers typically [`Graph::reshape`] to `[B, S, H]`).
    ///
    /// # Panics
    ///
    /// Panics if the table is not rank-2 or an id is out of range.
    pub fn embedding(&mut self, table: Var, ids: &[u32]) -> Var {
        let t = &self.nodes[table.0].value;
        assert_eq!(t.shape().rank(), 2, "embedding table must be rank-2");
        let v = t.dims()[0];
        let h = t.dims()[1];
        let mut out = Tensor::zeros(&[ids.len(), h]);
        for (pos, &id) in ids.iter().enumerate() {
            assert!(
                (id as usize) < v,
                "embedding id {id} out of range for table with {v} rows"
            );
            out.data_mut()[pos * h..(pos + 1) * h]
                .copy_from_slice(&t.data()[id as usize * h..(id as usize + 1) * h]);
        }
        self.push(Op::Embedding { ids: ids.to_vec() }, vec![table.0], out)
    }

    /// Normalizes the last dimension to zero mean and unit variance (the
    /// non-affine core of layer normalization). Combine with broadcast
    /// [`Graph::mul`]/[`Graph::add`] for the learned gain and bias.
    pub fn normalize_last(&mut self, a: Var, eps: f32) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        let width = value.shape().last_dim();
        let (_means, rstd) = kernels::layer_norm_rows(value.data_mut(), width, eps);
        self.push(Op::NormalizeLast { rstd }, vec![a.0], value)
    }

    /// Mean cross-entropy of logits against integer class targets.
    ///
    /// `logits` is reshaped internally to `[N, C]` where `C` is the last
    /// dimension. `targets` has one entry per row; rows whose target equals
    /// `ignore_index` contribute neither to the loss nor to gradients (used
    /// for non-masked MLM positions and padding).
    ///
    /// Returns a scalar. If every row is ignored the loss is 0.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of rows, or a
    /// non-ignored target is outside `[0, C)`.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[i32], ignore_index: i32) -> Var {
        let lv = &self.nodes[logits.0].value;
        let classes = lv.shape().last_dim();
        let rows = lv.numel() / classes;
        assert_eq!(
            targets.len(),
            rows,
            "cross_entropy: {} targets for {rows} rows",
            targets.len()
        );
        let mut probs = lv.data().to_vec();
        kernels::softmax_rows(&mut probs, classes);
        let mut loss = 0.0f64;
        let mut n_valid = 0usize;
        for (row, &t) in targets.iter().enumerate() {
            if t == ignore_index {
                continue;
            }
            assert!(
                (0..classes as i32).contains(&t),
                "cross_entropy target {t} out of range 0..{classes}"
            );
            let p = probs[row * classes + t as usize].max(1e-12);
            loss -= (p as f64).ln();
            n_valid += 1;
        }
        let mean = if n_valid == 0 {
            0.0
        } else {
            (loss / n_valid as f64) as f32
        };
        self.push(
            Op::CrossEntropy {
                targets: targets.to_vec(),
                ignore_index,
                n_valid,
                probs,
            },
            vec![logits.0],
            Tensor::scalar(mean),
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from `loss` (must be scalar).
    ///
    /// After this call, [`Graph::grad`] returns gradients for leaves and
    /// [`Graph::grads_into`] exports parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar (single-element) variable.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss"
        );
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        accumulate(&mut self.grads, loss.0, Tensor::scalar(1.0));
        for id in (0..=loss.0).rev() {
            backward_node(&self.nodes, &mut self.grads, id);
        }
    }

    /// Adds the gradients of parameter leaves into the [`Params`] store
    /// (accumulating, so several graphs can contribute to one step).
    pub fn grads_into(&self, params: &mut Params) {
        for &(node_id, pid) in &self.param_links {
            if let Some(g) = self.grads.get(node_id).and_then(|g| g.as_ref()) {
                params.grad_mut(pid).axpy(1.0, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(dims, data.to_vec()).unwrap()
    }

    #[test]
    fn add_backward_same_shape() {
        let mut g = Graph::new();
        let a = g.input(t(&[2], &[1.0, 2.0]));
        let b = g.input(t(&[2], &[3.0, 4.0]));
        let s = g.add(a, b);
        let loss = g.sum(s);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn add_row_broadcast_backward_reduces() {
        let mut g = Graph::new();
        let a = g.input(t(&[2, 3], &[0.; 6]));
        let b = g.input(t(&[3], &[1., 2., 3.]));
        let s = g.add(a, b);
        assert_eq!(g.value(s).data(), &[1., 2., 3., 1., 2., 3.]);
        let loss = g.sum(s);
        g.backward(loss);
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn mul_scalar_broadcast() {
        let mut g = Graph::new();
        let a = g.input(t(&[2], &[3.0, 5.0]));
        let c = g.input(Tensor::scalar(2.0));
        let m = g.mul(a, c);
        assert_eq!(g.value(m).data(), &[6.0, 10.0]);
        let loss = g.sum(m);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[2.0, 2.0]);
        assert_eq!(g.grad(c).unwrap().item(), 8.0);
    }

    #[test]
    fn matmul_backward_matches_manual() {
        // loss = sum(A B); dA = 1 * B^T, dB = A^T * 1
        let mut g = Graph::new();
        let a = g.input(t(&[2, 2], &[1., 2., 3., 4.]));
        let b = g.input(t(&[2, 2], &[5., 6., 7., 8.]));
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[11., 15., 11., 15.]);
        assert_eq!(g.grad(b).unwrap().data(), &[4., 4., 6., 6.]);
    }

    #[test]
    fn matmul_broadcast_rhs_accumulates_batch() {
        let mut g = Graph::new();
        let a = g.input(t(&[2, 1, 2], &[1., 2., 3., 4.]));
        let w = g.input(t(&[2, 1], &[1., 1.]));
        let c = g.matmul(a, w);
        let loss = g.sum(c);
        g.backward(loss);
        // dW = sum over batch of a^T = [1+3, 2+4]
        assert_eq!(g.grad(w).unwrap().data(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_and_backward_shape() {
        let mut g = Graph::new();
        let x = g.input(t(&[1, 3], &[1.0, 2.0, 3.0]));
        let s = g.softmax(x);
        let sum: f32 = g.value(s).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        let loss = g.sum(s);
        g.backward(loss);
        // Softmax rows sum to 1 regardless of input, so d(sum)/dx = 0.
        assert!(g.grad(x).unwrap().data().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 4]));
        let loss = g.cross_entropy(x, &[0, 3], -100);
        assert!((g.value(loss).item() - (4.0f32).ln()).abs() < 1e-5);
        g.backward(loss);
        let gx = g.grad(x).unwrap();
        // Gradient: (p - y)/N with p = 0.25.
        assert!((gx.data()[0] - (0.25 - 1.0) / 2.0).abs() < 1e-6);
        assert!((gx.data()[1] - 0.25 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_ignore_index() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 4]));
        let loss = g.cross_entropy(x, &[1, -100], -100);
        assert!((g.value(loss).item() - (4.0f32).ln()).abs() < 1e-5);
        g.backward(loss);
        let gx = g.grad(x).unwrap();
        // Second row fully ignored.
        assert!(gx.data()[4..].iter().all(|v| *v == 0.0));
    }

    #[test]
    fn cross_entropy_all_ignored_is_zero() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 4]));
        let loss = g.cross_entropy(x, &[-100], -100);
        assert_eq!(g.value(loss).item(), 0.0);
        g.backward(loss);
        assert!(g.grad(x).unwrap().data().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn embedding_gather_and_scatter() {
        let mut g = Graph::new();
        let table = g.input(t(&[3, 2], &[1., 2., 3., 4., 5., 6.]));
        let e = g.embedding(table, &[2, 0, 2]);
        assert_eq!(g.value(e).data(), &[5., 6., 1., 2., 5., 6.]);
        let loss = g.sum(e);
        g.backward(loss);
        // Row 2 used twice, row 0 once, row 1 never.
        assert_eq!(g.grad(table).unwrap().data(), &[1., 1., 0., 0., 2., 2.]);
    }

    #[test]
    fn select_axis1_cls() {
        let mut g = Graph::new();
        let x = g.input(t(&[2, 2, 2], &[1., 2., 3., 4., 5., 6., 7., 8.]));
        let cls = g.select_axis1(x, 0);
        assert_eq!(g.value(cls).data(), &[1., 2., 5., 6.]);
        let loss = g.sum(cls);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[1., 1., 0., 0., 1., 1., 0., 0.]);
    }

    #[test]
    fn swap_axes12_roundtrip_and_grad() {
        let mut g = Graph::new();
        // [1, 2, 2, 1]: values 1..4 laid out as (s, h) = (0,0),(0,1),(1,0),(1,1)
        let x = g.input(t(&[1, 2, 2, 1], &[1., 2., 3., 4.]));
        let y = g.swap_axes12(x);
        assert_eq!(g.value(y).dims(), &[1, 2, 2, 1]);
        assert_eq!(g.value(y).data(), &[1., 3., 2., 4.]);
        let z = g.swap_axes12(y);
        assert_eq!(g.value(z).data(), g.value(x).data());
        let w = g.input(t(&[1, 2, 2, 1], &[1., 10., 100., 1000.]));
        let prod = g.mul(y, w);
        let loss = g.sum(prod);
        g.backward(loss);
        // dy/dx routes gradient through the permutation.
        assert_eq!(g.grad(x).unwrap().data(), &[1., 100., 10., 1000.]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut g = Graph::new();
        g.set_training(false);
        let x = g.input(t(&[4], &[1., 2., 3., 4.]));
        let d = g.dropout(x, 0.5);
        assert_eq!(d, x);
    }

    #[test]
    fn dropout_train_scales_kept() {
        let mut g = Graph::with_seed(3);
        let x = g.input(Tensor::ones(&[1000]));
        let d = g.dropout(x, 0.5);
        let vals = g.value(d).data();
        let kept = vals.iter().filter(|&&v| v != 0.0).count();
        assert!(vals.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert!((350..650).contains(&kept), "kept {kept}");
    }

    #[test]
    fn normalize_last_statistics() {
        let mut g = Graph::new();
        let x = g.input(t(&[2, 4], &[1., 2., 3., 4., -1., 0., 1., 2.]));
        let n = g.normalize_last(x, 1e-5);
        for row in g.value(n).data().chunks(4) {
            let m: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(m.abs() < 1e-5);
        }
    }

    #[test]
    fn reshape_grad_flows() {
        let mut g = Graph::new();
        let x = g.input(t(&[2, 2], &[1., 2., 3., 4.]));
        let r = g.reshape(x, &[4]);
        let sq = g.mul(r, r);
        let loss = g.sum(sq);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[2., 4., 6., 8.]);
        assert_eq!(g.grad(x).unwrap().dims(), &[2, 2]);
    }

    #[test]
    fn concat_last_values_and_grads() {
        let mut g = Graph::new();
        let a = g.input(t(&[2, 2], &[1., 2., 3., 4.]));
        let b = g.input(t(&[2, 1], &[10., 20.]));
        let c = g.concat_last(a, b);
        assert_eq!(g.value(c).dims(), &[2, 3]);
        assert_eq!(g.value(c).data(), &[1., 2., 10., 3., 4., 20.]);
        let w = g.input(t(&[2, 3], &[1., 1., 5., 1., 1., 7.]));
        let p = g.mul(c, w);
        let loss = g.sum(p);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[1., 1., 1., 1.]);
        assert_eq!(g.grad(b).unwrap().data(), &[5., 7.]);
    }

    #[test]
    fn slice_last_values_and_grads() {
        let mut g = Graph::new();
        let x = g.input(t(&[2, 3], &[1., 2., 3., 4., 5., 6.]));
        let s = g.slice_last(x, 1, 2);
        assert_eq!(g.value(s).data(), &[2., 3., 5., 6.]);
        let loss = g.sum(s);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[0., 1., 1., 0., 1., 1.]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn slice_last_out_of_range_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 3]));
        g.slice_last(x, 2, 2);
    }

    #[test]
    fn sum_last_values_and_grads() {
        let mut g = Graph::new();
        let x = g.input(t(&[2, 3], &[1., 2., 3., 4., 5., 6.]));
        let s = g.sum_last(x);
        assert_eq!(g.value(s).dims(), &[2]);
        assert_eq!(g.value(s).data(), &[6., 15.]);
        let w = g.input(t(&[2], &[1., 10.]));
        let p = g.mul(s, w);
        let loss = g.sum(p);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[1., 1., 1., 10., 10., 10.]);
    }

    #[test]
    fn mean_axis1_pools_sequence() {
        let mut g = Graph::new();
        let x = g.input(t(&[1, 2, 2], &[1., 2., 3., 4.]));
        let m = g.mean_axis1(x);
        assert_eq!(g.value(m).dims(), &[1, 2]);
        assert_eq!(g.value(m).data(), &[2., 3.]);
        let loss = g.sum(m);
        g.backward(loss);
        assert!(g
            .grad(x)
            .unwrap()
            .data()
            .iter()
            .all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn grad_reused_var_accumulates() {
        // loss = sum(x * x) uses x twice.
        let mut g = Graph::new();
        let x = g.input(t(&[2], &[3.0, -2.0]));
        let sq = g.mul(x, x);
        let loss = g.sum(sq);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[6.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_non_scalar_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[2]));
        g.backward(x);
    }
}
