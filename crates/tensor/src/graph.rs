//! The autograd tape: forward-op construction and reverse-mode backward.

use crate::arena::BufferPool;
use crate::kernels;
use crate::ops::{accumulate, backward_node, Broadcast, Node, Op};
use crate::optim::{ParamId, Params};
use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Handle to a node on a [`Graph`] tape.
///
/// A `Var` is only meaningful for the graph — and the graph *generation* —
/// that produced it: [`Graph::reset`] invalidates all outstanding handles.
/// Using a stale handle panics in debug builds (generation check) instead
/// of silently indexing a recycled node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var {
    pub(crate) idx: usize,
    pub(crate) gen: u32,
}

/// A reverse-mode automatic-differentiation tape.
///
/// A `Graph` is built per forward pass (the "define-by-run" style): each
/// operation appends a node holding its result, and [`Graph::backward`]
/// walks the tape in reverse applying each node's gradient rule.
/// Parameters enter the graph via [`Graph::param`], and their gradients are
/// exported back to the [`Params`] store with [`Graph::grads_into`].
///
/// Rather than constructing a fresh graph per training step, call
/// [`Graph::reset`] between steps: the tape is cleared but every buffer it
/// owned (values, gradients, dropout masks, saved statistics) is retained
/// in an internal pool and recycled by the next step's ops, so steady-state
/// training performs almost no heap allocation. `reset` also replays the
/// dropout RNG from the stored seed, making a reused graph bit-identical
/// to a freshly constructed one.
///
/// # Example
///
/// ```
/// use clinfl_tensor::{Graph, Tensor};
/// let mut g = Graph::new();
/// let x = g.input(Tensor::from_vec(&[2], vec![3.0, 4.0])?);
/// let sq = g.mul(x, x);
/// let loss = g.sum(sq); // x0^2 + x1^2
/// g.backward(loss);
/// assert_eq!(g.grad(x).unwrap().data(), &[6.0, 8.0]); // d/dx = 2x
/// # Ok::<(), clinfl_tensor::TensorError>(())
/// ```
#[derive(Debug)]
pub struct Graph {
    nodes: Vec<Node>,
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    param_links: Vec<(usize, ParamId)>,
    training: bool,
    rng: StdRng,
    seed: u64,
    generation: u32,
    pool: BufferPool,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape in training mode (dropout active) with a fixed
    /// default seed for dropout masks.
    pub fn new() -> Self {
        Self::with_seed(0x5eed)
    }

    /// Creates an empty tape with an explicit dropout seed.
    pub fn with_seed(seed: u64) -> Self {
        Graph {
            nodes: Vec::new(),
            values: Vec::new(),
            grads: Vec::new(),
            param_links: Vec::new(),
            training: true,
            rng: StdRng::seed_from_u64(seed),
            seed,
            generation: 0,
            pool: BufferPool::default(),
        }
    }

    /// Clears the tape for the next step, recycling every buffer it owned
    /// into the internal pool, and reseeds the dropout RNG with `seed`.
    ///
    /// After this call the graph is observationally identical to
    /// [`Graph::with_seed`]`(seed)` (the training-mode flag is preserved),
    /// except that subsequent ops draw their buffers from the pool instead
    /// of the allocator. All outstanding [`Var`] handles become stale.
    pub fn reset_with_seed(&mut self, seed: u64) {
        self.generation = self.generation.wrapping_add(1);
        for v in self.values.drain(..) {
            self.pool.recycle(v);
        }
        for node in self.nodes.drain(..) {
            match node.op {
                Op::Dropout { mask } => self.pool.give_f32(mask),
                Op::CrossEntropy { targets, probs, .. } => {
                    self.pool.give_f32(probs);
                    self.pool.give_i32(targets);
                }
                Op::Embedding { ids } => self.pool.give_u32(ids),
                Op::NormalizeLast { rstd } => self.pool.give_f32(rstd),
                _ => {}
            }
        }
        for g in self.grads.drain(..).flatten() {
            self.pool.recycle(g);
        }
        self.param_links.clear();
        self.seed = seed;
        self.rng = StdRng::seed_from_u64(seed);
        // Everything is back in the pool: publish hit/miss deltas and the
        // held-bytes high-water mark to the global obs registry once per
        // step (metrics only — no effect on graph state).
        self.pool.publish_obs();
    }

    /// [`Graph::reset_with_seed`] with the seed the graph was created (or
    /// last reset) with, replaying the same dropout streams.
    pub fn reset(&mut self) {
        let seed = self.seed;
        self.reset_with_seed(seed);
    }

    /// Buffer-pool counters `(hits, misses)`: requests served from
    /// recycled buffers vs. requests that hit the system allocator.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.hits(), self.pool.misses())
    }

    /// High-water mark of bytes parked in the buffer pool's free lists.
    pub fn pool_peak_bytes(&self) -> u64 {
        self.pool.peak_bytes()
    }

    /// Switches between training mode (dropout active) and evaluation mode
    /// (dropout is the identity).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the tape is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Resolves a handle to its node index, checking (in debug builds) that
    /// it belongs to the current tape generation.
    #[inline]
    fn chk(&self, v: Var) -> usize {
        debug_assert_eq!(
            v.gen, self.generation,
            "stale Var used after Graph::reset()"
        );
        v.idx
    }

    fn push(&mut self, op: Op, inputs: &[usize], value: Tensor) -> Var {
        self.nodes.push(Node::new(op, inputs));
        self.values.push(value);
        Var {
            idx: self.nodes.len() - 1,
            gen: self.generation,
        }
    }

    /// Forward value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[self.chk(v)]
    }

    /// Gradient of a leaf variable after [`Graph::backward`]; `None` if the
    /// variable did not receive a gradient.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        let idx = self.chk(v);
        self.grads.get(idx).and_then(|g| g.as_ref())
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Adds a constant input (leaf) to the tape, taking ownership of `t`
    /// as-is. Prefer [`Graph::input_with`] on hot paths so the leaf's
    /// buffer comes from the pool.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(Op::Leaf, &[], t)
    }

    /// Adds a zero-initialized constant input (leaf) of shape `dims`,
    /// drawing its buffer from the pool, and lets `init` fill it in place.
    ///
    /// This is the allocation-free counterpart of building a `Tensor` and
    /// calling [`Graph::input`]: batch encodings, masks and initial
    /// recurrent states write into a recycled zeroed buffer instead.
    pub fn input_with(&mut self, dims: &[usize], init: impl FnOnce(&mut [f32])) -> Var {
        let mut t = self.pool.tensor_zeroed(Shape::new(dims));
        init(t.data_mut());
        self.push(Op::Leaf, &[], t)
    }

    /// Adds a parameter (leaf) to the tape, copying its current value from
    /// the store and remembering the link so [`Graph::grads_into`] can route
    /// the gradient back.
    pub fn param(&mut self, params: &Params, id: ParamId) -> Var {
        let value = self.pool.tensor_copy(params.value(id));
        let v = self.push(Op::Leaf, &[], value);
        self.param_links.push((v.idx, id));
        v
    }

    // ------------------------------------------------------------------
    // Element-wise & scalar ops
    // ------------------------------------------------------------------

    fn broadcast_kind(&self, a: Var, b: Var, what: &str) -> Broadcast {
        let sa = self.values[self.chk(a)].shape();
        let sb = self.values[self.chk(b)].shape();
        if sa == sb {
            Broadcast::None
        } else if sb.numel() == 1 {
            Broadcast::Scalar
        } else if sb.rank() == 1 && sb.last_dim() == sa.last_dim() {
            Broadcast::Row
        } else {
            panic!("{what}: cannot broadcast {sb} onto {sa}");
        }
    }

    fn apply_broadcast(
        pool: &mut BufferPool,
        a: &Tensor,
        b: &Tensor,
        bcast: Broadcast,
        f: impl Fn(f32, f32) -> f32,
    ) -> Tensor {
        let mut out = pool.tensor_copy(a);
        match bcast {
            Broadcast::None => {
                for (o, &bv) in out.data_mut().iter_mut().zip(b.data()) {
                    *o = f(*o, bv);
                }
            }
            Broadcast::Scalar => {
                let bv = b.data()[0];
                for o in out.data_mut() {
                    *o = f(*o, bv);
                }
            }
            Broadcast::Row => {
                let width = a.shape().last_dim();
                for row in out.data_mut().chunks_mut(width) {
                    for (o, &bv) in row.iter_mut().zip(b.data()) {
                        *o = f(*o, bv);
                    }
                }
            }
        }
        out
    }

    /// `a + b`. `b` may be the same shape, a scalar, or a last-dim vector.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let bcast = self.broadcast_kind(a, b, "add");
        let (ia, ib) = (self.chk(a), self.chk(b));
        let value = Self::apply_broadcast(
            &mut self.pool,
            &self.values[ia],
            &self.values[ib],
            bcast,
            |x, y| x + y,
        );
        self.push(Op::Add(bcast), &[ia, ib], value)
    }

    /// `a - b`, with the same broadcasting rules as [`Graph::add`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let bcast = self.broadcast_kind(a, b, "sub");
        let (ia, ib) = (self.chk(a), self.chk(b));
        let value = Self::apply_broadcast(
            &mut self.pool,
            &self.values[ia],
            &self.values[ib],
            bcast,
            |x, y| x - y,
        );
        self.push(Op::Sub(bcast), &[ia, ib], value)
    }

    /// Element-wise `a * b`, with the same broadcasting rules as
    /// [`Graph::add`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let bcast = self.broadcast_kind(a, b, "mul");
        let (ia, ib) = (self.chk(a), self.chk(b));
        let value = Self::apply_broadcast(
            &mut self.pool,
            &self.values[ia],
            &self.values[ib],
            bcast,
            |x, y| x * y,
        );
        self.push(Op::Mul(bcast), &[ia, ib], value)
    }

    /// `-a`.
    pub fn neg(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let mut value = self.pool.tensor_uninit(*self.values[ia].shape());
        kernels::map_into(self.values[ia].data(), value.data_mut(), 16, |v| -v);
        self.push(Op::Neg, &[ia], value)
    }

    /// `a * c` for a constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let ia = self.chk(a);
        let mut value = self.pool.tensor_uninit(*self.values[ia].shape());
        kernels::map_into(self.values[ia].data(), value.data_mut(), 16, |v| v * c);
        self.push(Op::Scale(c), &[ia], value)
    }

    /// `a + c` for a constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let ia = self.chk(a);
        let mut value = self.pool.tensor_uninit(*self.values[ia].shape());
        kernels::map_into(self.values[ia].data(), value.data_mut(), 16, |v| v + c);
        self.push(Op::AddScalar, &[ia], value)
    }

    // ------------------------------------------------------------------
    // Linear algebra & shape
    // ------------------------------------------------------------------

    /// Batched matrix product (see [`Tensor::matmul`] for the shape rules).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or batch mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (ia, ib) = (self.chk(a), self.chk(b));
        let out_shape = self.values[ia].matmul_shape(&self.values[ib]);
        // Zeroed: the matmul kernel accumulates into its output.
        let mut value = self.pool.tensor_zeroed(out_shape);
        self.values[ia].matmul_into(&self.values[ib], &mut value);
        let rhs_broadcast =
            self.values[ib].shape().rank() == 2 && self.values[ia].shape().rank() > 2;
        self.push(Op::Matmul { rhs_broadcast }, &[ia, ib], value)
    }

    /// Batched matrix product with the right operand transposed in place:
    /// `a[.., M, K] · b[.., N, K]ᵀ -> [.., M, N]` (see
    /// [`Tensor::matmul_bt`]). Equivalent to
    /// `matmul(a, transpose_last2(b))` — forward and backward are
    /// bit-identical to that composition — but the packed `a·bᵀ` kernel
    /// absorbs the transpose into its packing strides, so no transposed
    /// copy of `b` (or of its gradient) is ever materialized. This is the
    /// attention-score (`q·kᵀ`) and tied-decoder (`h·Eᵀ`) fast path.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or batch mismatch.
    pub fn matmul_bt(&mut self, a: Var, b: Var) -> Var {
        let (ia, ib) = (self.chk(a), self.chk(b));
        let out_shape = self.values[ia].matmul_bt_shape(&self.values[ib]);
        // Zeroed: the kernel accumulates into its output.
        let mut value = self.pool.tensor_zeroed(out_shape);
        self.values[ia].matmul_bt_into(&self.values[ib], &mut value);
        let rhs_broadcast =
            self.values[ib].shape().rank() == 2 && self.values[ia].shape().rank() > 2;
        self.push(Op::MatmulABt { rhs_broadcast }, &[ia, ib], value)
    }

    /// Transposes the last two dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the rank is < 2.
    pub fn transpose_last2(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let mut value = self
            .pool
            .tensor_uninit(self.values[ia].shape().transposed_last2());
        self.values[ia].transpose_last2_into(value.data_mut());
        self.push(Op::TransposeLast2, &[ia], value)
    }

    /// Swaps axes 1 and 2 of a rank-4 tensor (`[B, S, H, D]` →
    /// `[B, H, S, D]`), used to split/merge attention heads.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4.
    pub fn swap_axes12(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let mut value = self
            .pool
            .tensor_uninit(self.values[ia].shape().swapped_axes12());
        self.values[ia].swap_axes12_into(value.data_mut());
        self.push(Op::SwapAxes12, &[ia], value)
    }

    /// Reshapes to `dims` (same element count).
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    pub fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        let ia = self.chk(a);
        let src = &self.values[ia];
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            src.numel(),
            "reshape from {} to {shape} changes element count",
            src.shape()
        );
        let mut value = self.pool.tensor_uninit(shape);
        value.data_mut().copy_from_slice(self.values[ia].data());
        self.push(Op::Reshape, &[ia], value)
    }

    /// Selects `[:, index, :]` from a rank-3 tensor (`[B, S, H] -> [B, H]`),
    /// e.g. the `[CLS]` position.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-3 or `index` is out of bounds.
    pub fn select_axis1(&mut self, a: Var, index: usize) -> Var {
        let ia = self.chk(a);
        let src = &self.values[ia];
        let dims = src.dims();
        assert_eq!(dims.len(), 3, "select_axis1 requires rank-3 input");
        let (b, s, h) = (dims[0], dims[1], dims[2]);
        assert!(index < s, "select_axis1 index {index} out of bounds {s}");
        // Uninit: every output row is fully copied.
        let mut out = self.pool.tensor_uninit(Shape::new(&[b, h]));
        let src = &self.values[ia];
        for bi in 0..b {
            out.data_mut()[bi * h..(bi + 1) * h]
                .copy_from_slice(&src.data()[(bi * s + index) * h..(bi * s + index + 1) * h]);
        }
        self.push(Op::Select { index, axis_len: s }, &[ia], out)
    }

    /// Concatenates two tensors along the last dimension. All leading
    /// dimensions must match.
    ///
    /// # Panics
    ///
    /// Panics if the leading dimensions differ.
    pub fn concat_last(&mut self, a: Var, b: Var) -> Var {
        let (ia, ib) = (self.chk(a), self.chk(b));
        let (sa, sb) = (*self.values[ia].shape(), *self.values[ib].shape());
        assert_eq!(
            sa.dims()[..sa.rank() - 1],
            sb.dims()[..sb.rank() - 1],
            "concat_last leading dims differ: {sa} vs {sb}"
        );
        let (wa, wb) = (sa.last_dim(), sb.last_dim());
        // Uninit: every output row is fully written.
        let mut out = self.pool.tensor_uninit(sa.with_last(wa + wb));
        let av = &self.values[ia];
        let bv = &self.values[ib];
        for ((row, ra), rb) in out
            .data_mut()
            .chunks_mut(wa + wb)
            .zip(av.data().chunks(wa))
            .zip(bv.data().chunks(wb))
        {
            row[..wa].copy_from_slice(ra);
            row[wa..].copy_from_slice(rb);
        }
        self.push(Op::ConcatLast, &[ia, ib], out)
    }

    /// Takes columns `start..start+len` of the last dimension.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the last dimension.
    pub fn slice_last(&mut self, a: Var, start: usize, len: usize) -> Var {
        let ia = self.chk(a);
        let src = &self.values[ia];
        let width = src.shape().last_dim();
        assert!(
            start + len <= width && len > 0,
            "slice_last {start}..{} out of 0..{width}",
            start + len
        );
        let out_shape = src.shape().with_last(len);
        // Uninit: every output row is fully copied.
        let mut out = self.pool.tensor_uninit(out_shape);
        let src = &self.values[ia];
        for (orow, srow) in out.data_mut().chunks_mut(len).zip(src.data().chunks(width)) {
            orow.copy_from_slice(&srow[start..start + len]);
        }
        self.push(
            Op::SliceLast {
                start,
                src_width: width,
            },
            &[ia],
            out,
        )
    }

    /// Sums over the last dimension (`[.., D]` → `[..]`).
    pub fn sum_last(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let src = &self.values[ia];
        let width = src.shape().last_dim().max(1);
        let out_shape = Shape::new(&src.dims()[..src.dims().len().saturating_sub(1)]);
        // Uninit: every output element is assigned.
        let mut out = self.pool.tensor_uninit(out_shape);
        let src = &self.values[ia];
        for (o, r) in out.data_mut().iter_mut().zip(src.data().chunks(width)) {
            *o = r.iter().sum();
        }
        self.push(Op::SumLast, &[ia], out)
    }

    /// Mean over axis 1 of a rank-3 tensor (`[B, S, H]` → `[B, H]`):
    /// sequence mean pooling.
    ///
    /// # Panics
    ///
    /// Panics unless the input is rank-3.
    pub fn mean_axis1(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let dims = self.values[ia].dims();
        assert_eq!(dims.len(), 3, "mean_axis1 requires rank-3 input");
        let (b, s, h) = (dims[0], dims[1], dims[2]);
        // Zeroed: rows accumulate before the final divide.
        let mut out = self.pool.tensor_zeroed(Shape::new(&[b, h]));
        let src = &self.values[ia];
        for bi in 0..b {
            let orow = &mut out.data_mut()[bi * h..(bi + 1) * h];
            for si in 0..s {
                let srow = &src.data()[(bi * s + si) * h..(bi * s + si + 1) * h];
                for (o, &v) in orow.iter_mut().zip(srow) {
                    *o += v;
                }
            }
            for o in orow.iter_mut() {
                *o /= s as f32;
            }
        }
        self.push(Op::MeanAxis1 { axis_len: s }, &[ia], out)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let v = self.values[ia].sum();
        let value = self.pool.tensor_full(Shape::new(&[]), v);
        self.push(Op::Sum, &[ia], value)
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let v = self.values[ia].mean();
        let value = self.pool.tensor_full(Shape::new(&[]), v);
        self.push(Op::Mean, &[ia], value)
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Softmax over the last dimension.
    pub fn softmax(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let mut value = self.pool.tensor_copy(&self.values[ia]);
        let width = value.shape().last_dim();
        kernels::softmax_rows(value.data_mut(), width);
        self.push(Op::Softmax, &[ia], value)
    }

    /// Log-softmax over the last dimension.
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let mut value = self.pool.tensor_copy(&self.values[ia]);
        let width = value.shape().last_dim();
        kernels::log_softmax_rows(value.data_mut(), width);
        self.push(Op::LogSoftmax, &[ia], value)
    }

    /// `tanh(a)` (fast Padé approximation; see
    /// [`kernels::tanh_fast`](crate::kernels::tanh_fast)).
    pub fn tanh(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let mut value = self.pool.tensor_uninit(*self.values[ia].shape());
        kernels::map_into(
            self.values[ia].data(),
            value.data_mut(),
            16,
            kernels::tanh_fast,
        );
        self.push(Op::Tanh, &[ia], value)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let mut value = self.pool.tensor_uninit(*self.values[ia].shape());
        kernels::map_into(
            self.values[ia].data(),
            value.data_mut(),
            16,
            kernels::sigmoid,
        );
        self.push(Op::Sigmoid, &[ia], value)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let mut value = self.pool.tensor_uninit(*self.values[ia].shape());
        kernels::map_into(self.values[ia].data(), value.data_mut(), 16, |v| v.max(0.0));
        self.push(Op::Relu, &[ia], value)
    }

    /// GELU (tanh approximation, as in BERT).
    pub fn gelu(&mut self, a: Var) -> Var {
        let ia = self.chk(a);
        let mut value = self.pool.tensor_uninit(*self.values[ia].shape());
        kernels::map_into(self.values[ia].data(), value.data_mut(), 16, kernels::gelu);
        self.push(Op::Gelu, &[ia], value)
    }

    /// Inverted dropout with probability `p`. Identity in evaluation mode.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1)`.
    pub fn dropout(&mut self, a: Var, p: f32) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        let ia = self.chk(a);
        if !self.training || p == 0.0 {
            return a;
        }
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let n = self.values[ia].numel();
        // Mask generation is on the hot path (every activation tensor in a
        // transformer); a xorshift64* stream seeded from the graph RNG is
        // an order of magnitude faster than drawing each element from
        // StdRng while remaining deterministic per graph seed.
        let mut state: u64 = self.rng.random::<u64>() | 1;
        let threshold = (keep as f64 * (1u64 << 32) as f64) as u64;
        let mut mask = self.pool.take_f32(n);
        for m in mask.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *m = if (state >> 32) < threshold {
                scale
            } else {
                0.0
            };
        }
        let mut value = self.pool.tensor_copy(&self.values[ia]);
        for (v, &m) in value.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.push(Op::Dropout { mask }, &[ia], value)
    }

    // ------------------------------------------------------------------
    // NN-specific ops
    // ------------------------------------------------------------------

    /// Gathers rows of an embedding table.
    ///
    /// `table` must be a `[V, H]` matrix; the output is `[ids.len(), H]`
    /// (callers typically [`Graph::reshape`] to `[B, S, H]`).
    ///
    /// # Panics
    ///
    /// Panics if the table is not rank-2 or an id is out of range.
    pub fn embedding(&mut self, table: Var, ids: &[u32]) -> Var {
        let it = self.chk(table);
        let t = &self.values[it];
        assert_eq!(t.shape().rank(), 2, "embedding table must be rank-2");
        let v = t.dims()[0];
        let h = t.dims()[1];
        // Uninit: every output row is fully copied.
        let mut out = self.pool.tensor_uninit(Shape::new(&[ids.len(), h]));
        let t = &self.values[it];
        for (pos, &id) in ids.iter().enumerate() {
            assert!(
                (id as usize) < v,
                "embedding id {id} out of range for table with {v} rows"
            );
            out.data_mut()[pos * h..(pos + 1) * h]
                .copy_from_slice(&t.data()[id as usize * h..(id as usize + 1) * h]);
        }
        let mut ids_buf = self.pool.take_u32(ids.len());
        ids_buf.copy_from_slice(ids);
        self.push(Op::Embedding { ids: ids_buf }, &[it], out)
    }

    /// Normalizes the last dimension to zero mean and unit variance (the
    /// non-affine core of layer normalization). Combine with broadcast
    /// [`Graph::mul`]/[`Graph::add`] for the learned gain and bias.
    pub fn normalize_last(&mut self, a: Var, eps: f32) -> Var {
        let ia = self.chk(a);
        let mut value = self.pool.tensor_copy(&self.values[ia]);
        let width = value.shape().last_dim();
        let rows = value.numel() / width.max(1);
        let mut rstd = self.pool.take_f32(rows);
        kernels::layer_norm_rows_rstd(value.data_mut(), width, eps, &mut rstd);
        self.push(Op::NormalizeLast { rstd }, &[ia], value)
    }

    /// Mean cross-entropy of logits against integer class targets.
    ///
    /// `logits` is reshaped internally to `[N, C]` where `C` is the last
    /// dimension. `targets` has one entry per row; rows whose target equals
    /// `ignore_index` contribute neither to the loss nor to gradients (used
    /// for non-masked MLM positions and padding).
    ///
    /// Returns a scalar. If every row is ignored the loss is 0.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of rows, or a
    /// non-ignored target is outside `[0, C)`.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[i32], ignore_index: i32) -> Var {
        let il = self.chk(logits);
        let lv = &self.values[il];
        let classes = lv.shape().last_dim();
        let rows = lv.numel() / classes;
        assert_eq!(
            targets.len(),
            rows,
            "cross_entropy: {} targets for {rows} rows",
            targets.len()
        );
        let mut probs = self.pool.take_f32(lv.numel());
        probs.copy_from_slice(self.values[il].data());
        kernels::softmax_rows(&mut probs, classes);
        let mut loss = 0.0f64;
        let mut n_valid = 0usize;
        for (row, &t) in targets.iter().enumerate() {
            if t == ignore_index {
                continue;
            }
            assert!(
                (0..classes as i32).contains(&t),
                "cross_entropy target {t} out of range 0..{classes}"
            );
            let p = probs[row * classes + t as usize].max(1e-12);
            loss -= (p as f64).ln();
            n_valid += 1;
        }
        let mean = if n_valid == 0 {
            0.0
        } else {
            (loss / n_valid as f64) as f32
        };
        let mut tbuf = self.pool.take_i32(targets.len());
        tbuf.copy_from_slice(targets);
        let value = self.pool.tensor_full(Shape::new(&[]), mean);
        self.push(
            Op::CrossEntropy {
                targets: tbuf,
                ignore_index,
                n_valid,
                probs,
            },
            &[il],
            value,
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from `loss` (must be scalar).
    ///
    /// After this call, [`Graph::grad`] returns gradients for leaves and
    /// [`Graph::grads_into`] exports parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar (single-element) variable.
    pub fn backward(&mut self, loss: Var) {
        let lid = self.chk(loss);
        assert_eq!(
            self.values[lid].numel(),
            1,
            "backward requires a scalar loss"
        );
        for g in self.grads.drain(..).flatten() {
            self.pool.recycle(g);
        }
        self.grads.resize_with(self.nodes.len(), || None);
        let seed = self.pool.tensor_full(Shape::new(&[]), 1.0);
        accumulate(&mut self.grads, &mut self.pool, lid, seed);
        for id in (0..=lid).rev() {
            backward_node(
                &self.nodes,
                &self.values,
                &mut self.grads,
                &mut self.pool,
                id,
            );
        }
    }

    /// Adds the gradients of parameter leaves into the [`Params`] store
    /// (accumulating, so several graphs can contribute to one step).
    pub fn grads_into(&self, params: &mut Params) {
        for &(node_id, pid) in &self.param_links {
            if let Some(g) = self.grads.get(node_id).and_then(|g| g.as_ref()) {
                params.grad_mut(pid).axpy(1.0, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(dims, data.to_vec()).unwrap()
    }

    #[test]
    fn add_backward_same_shape() {
        let mut g = Graph::new();
        let a = g.input(t(&[2], &[1.0, 2.0]));
        let b = g.input(t(&[2], &[3.0, 4.0]));
        let s = g.add(a, b);
        let loss = g.sum(s);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn add_row_broadcast_backward_reduces() {
        let mut g = Graph::new();
        let a = g.input(t(&[2, 3], &[0.; 6]));
        let b = g.input(t(&[3], &[1., 2., 3.]));
        let s = g.add(a, b);
        assert_eq!(g.value(s).data(), &[1., 2., 3., 1., 2., 3.]);
        let loss = g.sum(s);
        g.backward(loss);
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn mul_scalar_broadcast() {
        let mut g = Graph::new();
        let a = g.input(t(&[2], &[3.0, 5.0]));
        let c = g.input(Tensor::scalar(2.0));
        let m = g.mul(a, c);
        assert_eq!(g.value(m).data(), &[6.0, 10.0]);
        let loss = g.sum(m);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[2.0, 2.0]);
        assert_eq!(g.grad(c).unwrap().item(), 8.0);
    }

    #[test]
    fn matmul_backward_matches_manual() {
        // loss = sum(A B); dA = 1 * B^T, dB = A^T * 1
        let mut g = Graph::new();
        let a = g.input(t(&[2, 2], &[1., 2., 3., 4.]));
        let b = g.input(t(&[2, 2], &[5., 6., 7., 8.]));
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[11., 15., 11., 15.]);
        assert_eq!(g.grad(b).unwrap().data(), &[4., 4., 6., 6.]);
    }

    #[test]
    fn matmul_broadcast_rhs_accumulates_batch() {
        let mut g = Graph::new();
        let a = g.input(t(&[2, 1, 2], &[1., 2., 3., 4.]));
        let w = g.input(t(&[2, 1], &[1., 1.]));
        let c = g.matmul(a, w);
        let loss = g.sum(c);
        g.backward(loss);
        // dW = sum over batch of a^T = [1+3, 2+4]
        assert_eq!(g.grad(w).unwrap().data(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_and_backward_shape() {
        let mut g = Graph::new();
        let x = g.input(t(&[1, 3], &[1.0, 2.0, 3.0]));
        let s = g.softmax(x);
        let sum: f32 = g.value(s).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        let loss = g.sum(s);
        g.backward(loss);
        // Softmax rows sum to 1 regardless of input, so d(sum)/dx = 0.
        assert!(g.grad(x).unwrap().data().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 4]));
        let loss = g.cross_entropy(x, &[0, 3], -100);
        assert!((g.value(loss).item() - (4.0f32).ln()).abs() < 1e-5);
        g.backward(loss);
        let gx = g.grad(x).unwrap();
        // Gradient: (p - y)/N with p = 0.25.
        assert!((gx.data()[0] - (0.25 - 1.0) / 2.0).abs() < 1e-6);
        assert!((gx.data()[1] - 0.25 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_ignore_index() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 4]));
        let loss = g.cross_entropy(x, &[1, -100], -100);
        assert!((g.value(loss).item() - (4.0f32).ln()).abs() < 1e-5);
        g.backward(loss);
        let gx = g.grad(x).unwrap();
        // Second row fully ignored.
        assert!(gx.data()[4..].iter().all(|v| *v == 0.0));
    }

    #[test]
    fn cross_entropy_all_ignored_is_zero() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 4]));
        let loss = g.cross_entropy(x, &[-100], -100);
        assert_eq!(g.value(loss).item(), 0.0);
        g.backward(loss);
        assert!(g.grad(x).unwrap().data().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn embedding_gather_and_scatter() {
        let mut g = Graph::new();
        let table = g.input(t(&[3, 2], &[1., 2., 3., 4., 5., 6.]));
        let e = g.embedding(table, &[2, 0, 2]);
        assert_eq!(g.value(e).data(), &[5., 6., 1., 2., 5., 6.]);
        let loss = g.sum(e);
        g.backward(loss);
        // Row 2 used twice, row 0 once, row 1 never.
        assert_eq!(g.grad(table).unwrap().data(), &[1., 1., 0., 0., 2., 2.]);
    }

    #[test]
    fn select_axis1_cls() {
        let mut g = Graph::new();
        let x = g.input(t(&[2, 2, 2], &[1., 2., 3., 4., 5., 6., 7., 8.]));
        let cls = g.select_axis1(x, 0);
        assert_eq!(g.value(cls).data(), &[1., 2., 5., 6.]);
        let loss = g.sum(cls);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[1., 1., 0., 0., 1., 1., 0., 0.]);
    }

    #[test]
    fn swap_axes12_roundtrip_and_grad() {
        let mut g = Graph::new();
        // [1, 2, 2, 1]: values 1..4 laid out as (s, h) = (0,0),(0,1),(1,0),(1,1)
        let x = g.input(t(&[1, 2, 2, 1], &[1., 2., 3., 4.]));
        let y = g.swap_axes12(x);
        assert_eq!(g.value(y).dims(), &[1, 2, 2, 1]);
        assert_eq!(g.value(y).data(), &[1., 3., 2., 4.]);
        let z = g.swap_axes12(y);
        assert_eq!(g.value(z).data(), g.value(x).data());
        let w = g.input(t(&[1, 2, 2, 1], &[1., 10., 100., 1000.]));
        let prod = g.mul(y, w);
        let loss = g.sum(prod);
        g.backward(loss);
        // dy/dx routes gradient through the permutation.
        assert_eq!(g.grad(x).unwrap().data(), &[1., 100., 10., 1000.]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut g = Graph::new();
        g.set_training(false);
        let x = g.input(t(&[4], &[1., 2., 3., 4.]));
        let d = g.dropout(x, 0.5);
        assert_eq!(d, x);
    }

    #[test]
    fn dropout_train_scales_kept() {
        let mut g = Graph::with_seed(3);
        let x = g.input(Tensor::ones(&[1000]));
        let d = g.dropout(x, 0.5);
        let vals = g.value(d).data();
        let kept = vals.iter().filter(|&&v| v != 0.0).count();
        assert!(vals.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert!((350..650).contains(&kept), "kept {kept}");
    }

    #[test]
    fn normalize_last_statistics() {
        let mut g = Graph::new();
        let x = g.input(t(&[2, 4], &[1., 2., 3., 4., -1., 0., 1., 2.]));
        let n = g.normalize_last(x, 1e-5);
        for row in g.value(n).data().chunks(4) {
            let m: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(m.abs() < 1e-5);
        }
    }

    #[test]
    fn reshape_grad_flows() {
        let mut g = Graph::new();
        let x = g.input(t(&[2, 2], &[1., 2., 3., 4.]));
        let r = g.reshape(x, &[4]);
        let sq = g.mul(r, r);
        let loss = g.sum(sq);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[2., 4., 6., 8.]);
        assert_eq!(g.grad(x).unwrap().dims(), &[2, 2]);
    }

    #[test]
    fn concat_last_values_and_grads() {
        let mut g = Graph::new();
        let a = g.input(t(&[2, 2], &[1., 2., 3., 4.]));
        let b = g.input(t(&[2, 1], &[10., 20.]));
        let c = g.concat_last(a, b);
        assert_eq!(g.value(c).dims(), &[2, 3]);
        assert_eq!(g.value(c).data(), &[1., 2., 10., 3., 4., 20.]);
        let w = g.input(t(&[2, 3], &[1., 1., 5., 1., 1., 7.]));
        let p = g.mul(c, w);
        let loss = g.sum(p);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[1., 1., 1., 1.]);
        assert_eq!(g.grad(b).unwrap().data(), &[5., 7.]);
    }

    #[test]
    fn slice_last_values_and_grads() {
        let mut g = Graph::new();
        let x = g.input(t(&[2, 3], &[1., 2., 3., 4., 5., 6.]));
        let s = g.slice_last(x, 1, 2);
        assert_eq!(g.value(s).data(), &[2., 3., 5., 6.]);
        let loss = g.sum(s);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[0., 1., 1., 0., 1., 1.]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn slice_last_out_of_range_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 3]));
        g.slice_last(x, 2, 2);
    }

    #[test]
    fn sum_last_values_and_grads() {
        let mut g = Graph::new();
        let x = g.input(t(&[2, 3], &[1., 2., 3., 4., 5., 6.]));
        let s = g.sum_last(x);
        assert_eq!(g.value(s).dims(), &[2]);
        assert_eq!(g.value(s).data(), &[6., 15.]);
        let w = g.input(t(&[2], &[1., 10.]));
        let p = g.mul(s, w);
        let loss = g.sum(p);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[1., 1., 1., 10., 10., 10.]);
    }

    #[test]
    fn mean_axis1_pools_sequence() {
        let mut g = Graph::new();
        let x = g.input(t(&[1, 2, 2], &[1., 2., 3., 4.]));
        let m = g.mean_axis1(x);
        assert_eq!(g.value(m).dims(), &[1, 2]);
        assert_eq!(g.value(m).data(), &[2., 3.]);
        let loss = g.sum(m);
        g.backward(loss);
        assert!(g
            .grad(x)
            .unwrap()
            .data()
            .iter()
            .all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn grad_reused_var_accumulates() {
        // loss = sum(x * x) uses x twice.
        let mut g = Graph::new();
        let x = g.input(t(&[2], &[3.0, -2.0]));
        let sq = g.mul(x, x);
        let loss = g.sum(sq);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[6.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_non_scalar_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[2]));
        g.backward(x);
    }

    #[test]
    fn input_with_builds_leaf_from_closure() {
        let mut g = Graph::new();
        let x = g.input_with(&[2, 2], |d| d[3] = 7.0);
        assert_eq!(g.value(x).dims(), &[2, 2]);
        assert_eq!(g.value(x).data(), &[0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn reset_replays_dropout_stream() {
        let mut g = Graph::with_seed(42);
        let x = g.input(Tensor::ones(&[512]));
        let d = g.dropout(x, 0.3);
        let first: Vec<f32> = g.value(d).data().to_vec();
        g.reset();
        let x2 = g.input(Tensor::ones(&[512]));
        let d2 = g.dropout(x2, 0.3);
        assert_eq!(g.value(d2).data(), &first[..]);
        let (hits, _misses) = g.pool_stats();
        assert!(hits > 0, "second pass should reuse recycled buffers");
    }

    #[test]
    fn reset_reuse_is_bit_identical_to_fresh() {
        fn step(g: &mut Graph) -> (u32, Vec<u32>, Vec<u32>) {
            let x = g.input(t(&[2, 3], &[0.5, -1.0, 2.0, 1.5, 0.0, -0.5]));
            let w = g.input(t(&[3, 2], &[0.1, 0.2, -0.3, 0.4, 0.5, -0.6]));
            let h = g.matmul(x, w);
            let a = g.tanh(h);
            let d = g.dropout(a, 0.25);
            let n = g.normalize_last(d, 1e-5);
            let loss = g.mean(n);
            g.backward(loss);
            (
                g.value(loss).item().to_bits(),
                g.grad(x)
                    .unwrap()
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
                g.grad(w)
                    .unwrap()
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
            )
        }
        let mut reused = Graph::with_seed(11);
        for _ in 0..3 {
            reused.reset_with_seed(11);
            let got = step(&mut reused);
            let mut fresh = Graph::with_seed(11);
            let want = step(&mut fresh);
            assert_eq!(got, want);
        }
        let (hits, _) = reused.pool_stats();
        assert!(hits > 0, "reused graph should hit the pool");
    }

    #[test]
    fn reset_handles_shape_changes_without_bleed_through() {
        let mut g = Graph::new();
        let x = g.input(t(&[4], &[5.0; 4]));
        let s = g.scale(x, 2.0);
        let loss = g.sum(s);
        g.backward(loss);
        g.reset();
        // Smaller tensors next step: recycled buffers must be re-sized and
        // (where required) re-zeroed.
        let y = g.input_with(&[2], |d| d[0] = 1.0);
        assert_eq!(g.value(y).data(), &[1.0, 0.0]);
        let sq = g.mul(y, y);
        let loss2 = g.sum(sq);
        g.backward(loss2);
        assert_eq!(g.grad(y).unwrap().data(), &[2.0, 0.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stale Var")]
    fn stale_var_after_reset_panics() {
        let mut g = Graph::new();
        let x = g.input(t(&[2], &[1.0, 2.0]));
        g.reset();
        let _ = g.value(x);
    }
}
