//! Shape utilities shared by [`crate::Tensor`] and the autograd graph.

use std::fmt;

/// Maximum rank (number of dimensions) a [`Shape`] can represent.
///
/// The models in this workspace never exceed rank 4 (`[B, heads, S, S]`
/// attention scores); 6 leaves headroom without bloating the inline
/// representation.
pub const MAX_RANK: usize = 6;

/// A tensor shape: the extent of each dimension, row-major.
///
/// `Shape` stores its extents inline in a fixed-size array (rather than a
/// heap `Vec`), so shapes are `Copy` and constructing one — which happens
/// for every node pushed onto the autograd tape — never allocates. Unused
/// trailing slots are kept at zero so the derived `PartialEq`/`Hash` agree
/// with dimension-wise equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// A zero-dimensional shape (`&[]`) denotes a scalar with one element.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_RANK`] dimensions are given.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds the maximum supported rank {MAX_RANK}",
            dims.len()
        );
        let mut d = [0usize; MAX_RANK];
        d[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: d,
            rank: dims.len() as u8,
        }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Extent of the last dimension, or 1 for a scalar.
    pub fn last_dim(&self) -> usize {
        self.dims().last().copied().unwrap_or(1)
    }

    /// Number of rows when the tensor is viewed as a `[numel/last, last]`
    /// matrix, or 1 for a scalar.
    pub fn leading(&self) -> usize {
        if self.rank == 0 {
            1
        } else {
            self.numel() / self.last_dim().max(1)
        }
    }

    /// For rank >= 2: `(batch, rows, cols)` where `batch` is the product of
    /// all leading dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the rank is < 2.
    pub fn as_batched_matrix(&self) -> (usize, usize, usize) {
        assert!(
            self.rank() >= 2,
            "as_batched_matrix requires rank >= 2, got shape {self}"
        );
        let n = self.rank();
        let rows = self.dims[n - 2];
        let cols = self.dims[n - 1];
        let batch: usize = self.dims[..n - 2].iter().product();
        (batch, rows, cols)
    }

    /// Shape with the last two dimensions swapped.
    ///
    /// # Panics
    ///
    /// Panics if the rank is < 2.
    pub fn transposed_last2(&self) -> Shape {
        assert!(self.rank() >= 2, "transpose requires rank >= 2, got {self}");
        let mut s = *self;
        let n = self.rank();
        s.dims.swap(n - 2, n - 1);
        s
    }

    /// Shape with the last dimension replaced by `n` (e.g. the output shape
    /// of a matmul).
    ///
    /// # Panics
    ///
    /// Panics if the shape is rank-0.
    pub(crate) fn with_last(&self, n: usize) -> Shape {
        assert!(self.rank >= 1, "with_last requires rank >= 1");
        let mut s = *self;
        s.dims[self.rank as usize - 1] = n;
        s
    }

    /// Shape with dimensions 1 and 2 swapped (rank-4 head split).
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4.
    pub(crate) fn swapped_axes12(&self) -> Shape {
        assert_eq!(self.rank(), 4, "swapped_axes12 requires rank-4 input");
        let mut s = *self;
        s.dims.swap(1, 2);
        s
    }

    /// Whether `other` can broadcast onto `self` under this crate's rules:
    /// identical shape, a scalar, or a vector matching the last dimension.
    pub fn broadcasts_from(&self, other: &Shape) -> bool {
        other == self
            || other.numel() == 1
            || (other.rank() == 1 && other.last_dim() == self.last_dim())
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape({:?})", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.last_dim(), 4);
        assert_eq!(s.leading(), 6);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.last_dim(), 1);
        assert_eq!(s.leading(), 1);
    }

    #[test]
    fn batched_matrix_view() {
        let s = Shape::new(&[2, 3, 4, 5]);
        assert_eq!(s.as_batched_matrix(), (6, 4, 5));
        let m = Shape::new(&[4, 5]);
        assert_eq!(m.as_batched_matrix(), (1, 4, 5));
    }

    #[test]
    fn transpose_last2() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.transposed_last2(), Shape::new(&[2, 4, 3]));
    }

    #[test]
    #[should_panic(expected = "rank >= 2")]
    fn transpose_rank1_panics() {
        Shape::new(&[3]).transposed_last2();
    }

    #[test]
    fn broadcast_rules() {
        let s = Shape::new(&[2, 3, 4]);
        assert!(s.broadcasts_from(&Shape::new(&[2, 3, 4])));
        assert!(s.broadcasts_from(&Shape::new(&[4])));
        assert!(s.broadcasts_from(&Shape::new(&[1])));
        assert!(s.broadcasts_from(&Shape::new(&[])));
        assert!(!s.broadcasts_from(&Shape::new(&[3])));
        assert!(!s.broadcasts_from(&Shape::new(&[3, 4])));
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn equality_ignores_unused_slots() {
        // Shapes with the same extents compare equal regardless of how they
        // were built; different ranks with zero-extent tails do not.
        assert_eq!(Shape::new(&[2, 3]), Shape::from(vec![2, 3]));
        assert_ne!(Shape::new(&[2, 3]), Shape::new(&[2, 3, 0]));
    }

    #[test]
    fn with_last_replaces_trailing_dim() {
        assert_eq!(Shape::new(&[2, 3, 4]).with_last(7), Shape::new(&[2, 3, 7]));
    }

    #[test]
    #[should_panic(expected = "maximum supported rank")]
    fn over_max_rank_panics() {
        Shape::new(&[1, 1, 1, 1, 1, 1, 1]);
    }
}
