//! Shape utilities shared by [`crate::Tensor`] and the autograd graph.

use std::fmt;

/// A tensor shape: the extent of each dimension, row-major.
///
/// `Shape` is a thin, cheaply clonable wrapper around a `Vec<usize>` with
/// helpers for the broadcasting and batching rules this crate supports.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// A zero-dimensional shape (`&[]`) denotes a scalar with one element.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of the last dimension, or 1 for a scalar.
    pub fn last_dim(&self) -> usize {
        self.0.last().copied().unwrap_or(1)
    }

    /// Number of rows when the tensor is viewed as a `[numel/last, last]`
    /// matrix, or 1 for a scalar.
    pub fn leading(&self) -> usize {
        if self.0.is_empty() {
            1
        } else {
            self.numel() / self.last_dim().max(1)
        }
    }

    /// For rank >= 2: `(batch, rows, cols)` where `batch` is the product of
    /// all leading dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the rank is < 2.
    pub fn as_batched_matrix(&self) -> (usize, usize, usize) {
        assert!(
            self.rank() >= 2,
            "as_batched_matrix requires rank >= 2, got shape {self}"
        );
        let n = self.rank();
        let rows = self.0[n - 2];
        let cols = self.0[n - 1];
        let batch: usize = self.0[..n - 2].iter().product();
        (batch, rows, cols)
    }

    /// Shape with the last two dimensions swapped.
    ///
    /// # Panics
    ///
    /// Panics if the rank is < 2.
    pub fn transposed_last2(&self) -> Shape {
        assert!(self.rank() >= 2, "transpose requires rank >= 2, got {self}");
        let mut d = self.0.clone();
        let n = d.len();
        d.swap(n - 2, n - 1);
        Shape(d)
    }

    /// Whether `other` can broadcast onto `self` under this crate's rules:
    /// identical shape, a scalar, or a vector matching the last dimension.
    pub fn broadcasts_from(&self, other: &Shape) -> bool {
        other == self
            || other.numel() == 1
            || (other.rank() == 1 && other.last_dim() == self.last_dim())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.last_dim(), 4);
        assert_eq!(s.leading(), 6);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.last_dim(), 1);
        assert_eq!(s.leading(), 1);
    }

    #[test]
    fn batched_matrix_view() {
        let s = Shape::new(&[2, 3, 4, 5]);
        assert_eq!(s.as_batched_matrix(), (6, 4, 5));
        let m = Shape::new(&[4, 5]);
        assert_eq!(m.as_batched_matrix(), (1, 4, 5));
    }

    #[test]
    fn transpose_last2() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.transposed_last2(), Shape::new(&[2, 4, 3]));
    }

    #[test]
    #[should_panic(expected = "rank >= 2")]
    fn transpose_rank1_panics() {
        Shape::new(&[3]).transposed_last2();
    }

    #[test]
    fn broadcast_rules() {
        let s = Shape::new(&[2, 3, 4]);
        assert!(s.broadcasts_from(&Shape::new(&[2, 3, 4])));
        assert!(s.broadcasts_from(&Shape::new(&[4])));
        assert!(s.broadcasts_from(&Shape::new(&[1])));
        assert!(s.broadcasts_from(&Shape::new(&[])));
        assert!(!s.broadcasts_from(&Shape::new(&[3])));
        assert!(!s.broadcasts_from(&Shape::new(&[3, 4])));
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }
}
