//! Raw `f32` slice kernels shared by forward and backward passes.
//!
//! These functions operate on plain slices so they can be reused by the
//! [`crate::Tensor`] convenience methods, the autograd backward
//! implementations in `ops`, and the Criterion micro-benchmarks without any
//! graph overhead. All layouts are row-major.
//!
//! # GEMM family
//!
//! The three matrix products (`c += a·b`, `c += aᵀ·b`, `c += a·bᵀ`) share
//! one packed, register-blocked implementation (see DESIGN.md §3j): both
//! operands are packed into contiguous `MR`-row / `NR`-column panels held
//! in thread-local scratch, and an `MR×NR` register-tile micro-kernel walks
//! the panels with a fully unrolled inner loop that LLVM autovectorizes —
//! no intrinsics, no `unsafe` (the crate denies it). Transposed operands
//! are handled by the packing strides, so the backward passes never
//! materialize a transposed copy. The batched entry points
//! ([`matmul_batch_acc`] and friends) amortize packing across a whole
//! batch: a broadcast right-hand side is packed exactly once.
//!
//! The serial reference kernels ([`matmul_acc_ref`] and friends) retain
//! the previous naive loops; `bench_kernels` (CI leg `kernels`) times the
//! packed kernels against them and fails below an enforced speedup floor.
//!
//! The matrix and row kernels parallelize over contiguous blocks of output
//! rows (output *tiles*, for the GEMMs) through [`crate::pool`] when the
//! operation is large enough. Every output element is accumulated in the
//! same floating-point order regardless of thread count, so results are
//! bit-identical from `CLINFL_THREADS=1` to the full budget (see the pool
//! module's threading model).

use crate::pool;
use clinfl_obs::KernelTimer;
use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

// Per-op wall-time + invocation counters (see DESIGN.md §3e). Each is a
// static so the registry handles resolve once; a timed call costs two
// clock reads and two relaxed atomic adds.
static OBS_MATMUL: KernelTimer = KernelTimer::new("tensor.matmul");
static OBS_MATMUL_AT_B: KernelTimer = KernelTimer::new("tensor.matmul_at_b");
static OBS_MATMUL_A_BT: KernelTimer = KernelTimer::new("tensor.matmul_a_bt");
static OBS_SOFTMAX: KernelTimer = KernelTimer::new("tensor.softmax");
static OBS_SOFTMAX_BWD: KernelTimer = KernelTimer::new("tensor.softmax_backward");
static OBS_LOG_SOFTMAX: KernelTimer = KernelTimer::new("tensor.log_softmax");
static OBS_LOG_SOFTMAX_BWD: KernelTimer = KernelTimer::new("tensor.log_softmax_backward");
static OBS_LAYER_NORM: KernelTimer = KernelTimer::new("tensor.layer_norm");
static OBS_LAYER_NORM_BWD: KernelTimer = KernelTimer::new("tensor.layer_norm_backward");

/// Cached handle for a `<kernel>.flops` counter: pairs with the
/// [`KernelTimer`] of the same family so `bench_report` can derive a
/// GFLOP/s estimate (`flops / time_ns`).
struct FlopsCounter {
    name: &'static str,
    handle: OnceLock<Arc<clinfl_obs::Counter>>,
}

impl FlopsCounter {
    const fn new(name: &'static str) -> Self {
        FlopsCounter {
            name,
            handle: OnceLock::new(),
        }
    }

    fn add(&self, flops: usize) {
        if clinfl_obs::enabled() {
            self.handle
                .get_or_init(|| clinfl_obs::counter(self.name))
                .add(flops as u64);
        }
    }
}

static FLOPS_MATMUL: FlopsCounter = FlopsCounter::new("tensor.matmul.flops");
static FLOPS_MATMUL_AT_B: FlopsCounter = FlopsCounter::new("tensor.matmul_at_b.flops");
static FLOPS_MATMUL_A_BT: FlopsCounter = FlopsCounter::new("tensor.matmul_a_bt.flops");

// ---------------------------------------------------------------------------
// Packed register-blocked GEMM core (DESIGN.md §3j)
// ---------------------------------------------------------------------------

/// Register-tile height: rows of `c` held in accumulators per micro-kernel
/// pass. One packed A panel row is `MR` floats (32 bytes).
pub const GEMM_MR: usize = 6;
/// Register-tile width: columns of `c` held in accumulators per pass. One
/// packed B panel row is `NR` floats — 64 bytes, one cache line.
pub const GEMM_NR: usize = 16;
/// k-chunk: the packed panels are walked in `KC`-deep slices so one
/// A-panel slice (`KC·MR` floats) plus one B-panel slice (`KC·NR` floats)
/// stay L1-resident. Accumulators live in registers *across* chunks, so
/// chunking never changes the floating-point chain.
const GEMM_KC: usize = 512;

const MR: usize = GEMM_MR;
const NR: usize = GEMM_NR;

thread_local! {
    /// Reusable packing scratch (A panels, B panels). Thread-local rather
    /// than drawn from the graph's `BufferPool`: the kernels are free
    /// functions with no pool handle, and pool worker threads could not
    /// share the graph-owned `&mut BufferPool` anyway. The effect is the
    /// same as the arena's — on the training thread the two buffers are
    /// allocated once and recycled for every GEMM thereafter.
    static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The register-tile inner loop: `acc[i][j] += a_panel[kk][i] *
/// b_panel[kk][j]` for every `kk` in the panel slices.
///
/// The fixed-size array refs let LLVM fully unroll the `MR×NR` body and
/// vectorize the `j` loop; the accumulators stay in registers for the
/// whole walk. Vector lanes run across `j` (distinct output elements), so
/// vectorization never reorders any single element's additions.
#[inline]
fn micro_kernel(acc: &mut [[f32; NR]; MR], a_panel: &[f32], b_panel: &[f32]) {
    for (a_row, b_row) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let a_row: &[f32; MR] = a_row.try_into().expect("A panel row is MR wide");
        let b_row: &[f32; NR] = b_row.try_into().expect("B panel row is NR wide");
        for (&av, acc_row) in a_row.iter().zip(acc.iter_mut()) {
            for (&bv, cv) in b_row.iter().zip(acc_row.iter_mut()) {
                *cv += av * bv;
            }
        }
    }
}

/// Packs the logical `m×k` left operand (element `(i, p)` at
/// `a[i*rs + p*cs]`) into `MR`-row panels: panel `ip` holds rows
/// `ip*MR..`, laid out `[kk][ii]` so the micro-kernel reads one
/// contiguous `MR`-float row per `kk`. Edge panels are zero-padded to
/// full `MR` height.
fn pack_a(a: &[f32], rs: usize, cs: usize, m: usize, k: usize, out: &mut Vec<f32>) {
    let panels = m.div_ceil(MR);
    out.clear();
    out.resize(panels * k * MR, 0.0);
    for (ip, panel) in out.chunks_exact_mut(k * MR).enumerate() {
        let i0 = ip * MR;
        let mr = (m - i0).min(MR);
        for (kk, dst) in panel.chunks_exact_mut(MR).enumerate() {
            for (ii, d) in dst[..mr].iter_mut().enumerate() {
                *d = a[(i0 + ii) * rs + kk * cs];
            }
        }
    }
}

/// Packs the logical `k×n` right operand (element `(p, j)` at
/// `b[p*rs + j*cs]`) into `NR`-column panels laid out `[kk][jj]`. Edge
/// panels are zero-padded to full `NR` width. Row-major operands
/// (`cs == 1`) pack with straight slice copies.
fn pack_b(b: &[f32], rs: usize, cs: usize, k: usize, n: usize, out: &mut Vec<f32>) {
    let panels = n.div_ceil(NR);
    out.clear();
    out.resize(panels * k * NR, 0.0);
    for (jp, panel) in out.chunks_exact_mut(k * NR).enumerate() {
        let j0 = jp * NR;
        let nr = (n - j0).min(NR);
        if cs == 1 {
            for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
                dst[..nr].copy_from_slice(&b[kk * rs + j0..kk * rs + j0 + nr]);
            }
        } else {
            for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
                for (jj, d) in dst[..nr].iter_mut().enumerate() {
                    *d = b[kk * rs + (j0 + jj) * cs];
                }
            }
        }
    }
}

/// Computes one horizontal slab of the output (`c_slab` = rows
/// `row0..row0+c_slab.len()/n`, full width `n`) from the packed panels.
/// `row0` must be a multiple of `MR` (slab partitioning is tile-aligned).
///
/// Per `MR×NR` tile: load the live `mr×nr` sub-tile of `c` into the
/// accumulator array, run the micro-kernel over every k-chunk, store the
/// live sub-tile back. Each output element therefore accumulates its
/// products in ascending-`k` order on top of the entering value of `c` —
/// the same per-element chain as the naive reference kernels. Padded
/// accumulator lanes are computed but never stored.
fn gemm_slab(a_pack: &[f32], b_pack: &[f32], c_slab: &mut [f32], row0: usize, k: usize, n: usize) {
    debug_assert_eq!(row0 % MR, 0, "slab start must be tile-aligned");
    let jp_count = n.div_ceil(NR);
    for (pi, c_rows) in c_slab.chunks_mut(MR * n).enumerate() {
        let ip = row0 / MR + pi;
        let a_panel = &a_pack[ip * k * MR..(ip + 1) * k * MR];
        for jp in 0..jp_count {
            let j0 = jp * NR;
            let nr = (n - j0).min(NR);
            let b_panel = &b_pack[jp * k * NR..(jp + 1) * k * NR];
            let mut acc = [[0.0f32; NR]; MR];
            for (acc_row, c_row) in acc.iter_mut().zip(c_rows.chunks(n)) {
                acc_row[..nr].copy_from_slice(&c_row[j0..j0 + nr]);
            }
            for (a_chunk, b_chunk) in a_panel
                .chunks(GEMM_KC * MR)
                .zip(b_panel.chunks(GEMM_KC * NR))
            {
                micro_kernel(&mut acc, a_chunk, b_chunk);
            }
            for (acc_row, c_row) in acc.iter().zip(c_rows.chunks_mut(n)) {
                c_row[j0..j0 + nr].copy_from_slice(&acc_row[..nr]);
            }
        }
    }
}

/// One strided GEMM through the packed core: `c[m, n] += A·B` where
/// `A[i, p] = a[i*rs_a + p*cs_a]` and `B[p, j] = b[p*rs_b + j*cs_b]`
/// (`p` = contraction index, `0..k`). All three public GEMM variants and
/// their batched/flattened forms reduce to this by choice of strides.
///
/// Packs both operands on the calling thread (so parallel workers share
/// the read-only panels), then splits the output into `MR`-aligned row
/// slabs across the worker pool.
#[allow(clippy::too_many_arguments)]
fn gemm_strided(
    a: &[f32],
    rs_a: usize,
    cs_a: usize,
    b: &[f32],
    rs_b: usize,
    cs_b: usize,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    PACK_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let (a_buf, b_buf) = &mut *scratch;
        pack_a(a, rs_a, cs_a, m, k, a_buf);
        pack_b(b, rs_b, cs_b, k, n, b_buf);
        let (a_pack, b_pack) = (a_buf.as_slice(), b_buf.as_slice());
        let panels = m.div_ceil(MR);
        let w = pool::workers_for(panels, 2 * MR * k * n);
        if w <= 1 {
            gemm_slab(a_pack, b_pack, c, 0, k, n);
            return;
        }
        let slab_rows = panels.div_ceil(w) * MR;
        let jobs: Vec<_> = c
            .chunks_mut(slab_rows * n)
            .enumerate()
            .map(|(si, c_slab)| move || gemm_slab(a_pack, b_pack, c_slab, si * slab_rows, k, n))
            .collect();
        pool::run_jobs(jobs);
    });
}

/// Shared batch-parallel driver for the non-broadcast batched entry
/// points: runs `gemm(bi, c_batch_slice)` for every batch index, in
/// parallel blocks over the batch when the region is large enough. Each
/// per-item GEMM packs into the running worker's own thread-local
/// scratch, so workers never contend.
fn batch_gemms(
    c: &mut [f32],
    lb: usize,
    c_stride: usize,
    work_per_item: usize,
    gemm: impl Fn(usize, &mut [f32]) + Sync,
) {
    let w = pool::workers_for(lb, work_per_item);
    if w <= 1 {
        for (bi, cb) in c.chunks_mut(c_stride).enumerate() {
            gemm(bi, cb);
        }
        return;
    }
    let block = lb.div_ceil(w);
    let jobs: Vec<_> = c
        .chunks_mut(block * c_stride)
        .enumerate()
        .map(|(blk, c_block)| {
            let gemm = &gemm;
            move || {
                for (bi, cb) in c_block.chunks_mut(c_stride).enumerate() {
                    gemm(blk * block + bi, cb);
                }
            }
        })
        .collect();
    pool::run_jobs(jobs);
}

// ---------------------------------------------------------------------------
// Public GEMM entry points
// ---------------------------------------------------------------------------

/// `c[m, n] += a[m, k] * b[k, n]` (single matrix, accumulate).
///
/// Packed register-blocked implementation; each element of `c`
/// accumulates its `k` products in ascending order on top of the entering
/// value, the same per-element chain as [`matmul_acc_ref`] — results are
/// bit-identical to the reference for finite inputs (see DESIGN.md §3j
/// for the determinism argument) and across every thread count.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n`, `m*n`.
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let _obs = OBS_MATMUL.start();
    assert_eq!(a.len(), m * k, "matmul lhs length");
    assert_eq!(b.len(), k * n, "matmul rhs length");
    assert_eq!(c.len(), m * n, "matmul out length");
    FLOPS_MATMUL.add(2 * m * k * n);
    gemm_strided(a, k, 1, b, n, 1, c, m, k, n);
}

/// Batched `c[b, m, n] += a[b, m, k] * rhs`, where `rhs` is one shared
/// `[k, n]` matrix (`rhs_broadcast`) or a per-batch `[b, k, n]` stack.
///
/// This is the packing-amortized entry point behind [`Tensor::matmul`]:
/// a broadcast RHS is packed exactly once and the batch collapses into a
/// single `(b·m)×k×n` GEMM (batch items are just extra output rows, so
/// the per-element chains are unchanged); per-batch right-hand sides run
/// as parallel per-item GEMMs. Records one `tensor.matmul` timer
/// invocation for the whole batch.
///
/// [`Tensor::matmul`]: crate::Tensor::matmul
///
/// # Panics
///
/// Panics if the slice lengths disagree with the batched shapes.
#[allow(clippy::too_many_arguments)]
pub fn matmul_batch_acc(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    lb: usize,
    m: usize,
    k: usize,
    n: usize,
    rhs_broadcast: bool,
) {
    let _obs = OBS_MATMUL.start();
    assert_eq!(a.len(), lb * m * k, "matmul batch lhs length");
    let b_len = if rhs_broadcast { k * n } else { lb * k * n };
    assert_eq!(b.len(), b_len, "matmul batch rhs length");
    assert_eq!(c.len(), lb * m * n, "matmul batch out length");
    FLOPS_MATMUL.add(2 * lb * m * k * n);
    if rhs_broadcast || lb == 1 {
        gemm_strided(a, k, 1, b, n, 1, c, lb * m, k, n);
        return;
    }
    batch_gemms(c, lb, m * n, 2 * m * k * n, |bi, cb| {
        gemm_strided(
            &a[bi * m * k..][..m * k],
            k,
            1,
            &b[bi * k * n..][..k * n],
            n,
            1,
            cb,
            m,
            k,
            n,
        );
    });
}

/// `c[m, n] += a[k, m]^T * b[k, n]` — matmul with the left operand
/// transposed, used by backward passes (`dW = x^T dy`).
///
/// The packing strides absorb the transpose (no transposed copy is ever
/// built); each output element accumulates over ascending `p` exactly
/// like [`matmul_at_b_acc_ref`], so results are bit-identical to the
/// reference and across thread counts.
///
/// # Panics
///
/// Panics if the slice lengths do not match `k*m`, `k*n`, `m*n`.
pub fn matmul_at_b_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let _obs = OBS_MATMUL_AT_B.start();
    assert_eq!(a.len(), k * m, "matmul_at lhs length");
    assert_eq!(b.len(), k * n, "matmul_at rhs length");
    assert_eq!(c.len(), m * n, "matmul_at out length");
    FLOPS_MATMUL_AT_B.add(2 * m * k * n);
    gemm_strided(a, 1, m, b, n, 1, c, m, k, n);
}

/// Batched `aᵀ·b`: for each batch item, `c_bi[m, n] += a[bi][rows, m]^T *
/// b[bi][rows, n]`. With `acc_shared`, all batch items accumulate into
/// one shared `c[m, n]` in ascending batch order — the `dW = Σ_b x_bᵀ dy_b`
/// shape of a broadcast matmul's weight gradient.
///
/// The shared-accumulator case collapses into a single GEMM contracting
/// over all `lb*rows` rows at once (batch-major row order — the identical
/// per-element chain to looping batches in order), so both operands are
/// packed exactly once. Records one `tensor.matmul_at_b` timer invocation
/// for the whole batch.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the batched shapes.
#[allow(clippy::too_many_arguments)]
pub fn matmul_at_b_batch_acc(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    lb: usize,
    rows: usize,
    m: usize,
    n: usize,
    acc_shared: bool,
) {
    let _obs = OBS_MATMUL_AT_B.start();
    assert_eq!(a.len(), lb * rows * m, "matmul_at batch lhs length");
    assert_eq!(b.len(), lb * rows * n, "matmul_at batch rhs length");
    let c_len = if acc_shared { m * n } else { lb * m * n };
    assert_eq!(c.len(), c_len, "matmul_at batch out length");
    FLOPS_MATMUL_AT_B.add(2 * lb * rows * m * n);
    if acc_shared || lb == 1 {
        gemm_strided(a, 1, m, b, n, 1, c, m, lb * rows, n);
        return;
    }
    batch_gemms(c, lb, m * n, 2 * rows * m * n, |bi, cb| {
        gemm_strided(
            &a[bi * rows * m..][..rows * m],
            1,
            m,
            &b[bi * rows * n..][..rows * n],
            n,
            1,
            cb,
            m,
            rows,
            n,
        );
    });
}

/// `c[m, k] += a[m, n] * b[k, n]^T` — matmul with the right operand
/// transposed, used by backward passes (`dx = dy W^T`) and the attention
/// score product (`q·kᵀ`).
///
/// The packing strides absorb the transpose. Each output element
/// accumulates its products in ascending `n` order **on top of the
/// entering value of `c`** — bit-identical to [`matmul_a_bt_acc_ref`]
/// when `c` starts zeroed (the only way the training stack calls it);
/// when accumulating into a non-zero `c` the reference sums into a local
/// temporary first, which can differ by a final rounding.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*n`, `k*n`, `m*k`.
pub fn matmul_a_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    let _obs = OBS_MATMUL_A_BT.start();
    assert_eq!(a.len(), m * n, "matmul_bt lhs length");
    assert_eq!(b.len(), k * n, "matmul_bt rhs length");
    assert_eq!(c.len(), m * k, "matmul_bt out length");
    FLOPS_MATMUL_A_BT.add(2 * m * k * n);
    gemm_strided(a, n, 1, b, 1, n, c, m, n, k);
}

/// Batched `a·bᵀ`: for each batch item, `c[bi][m, kr] += a[bi][m, nc] *
/// b[bi][kr, nc]^T`, with `rhs_broadcast` sharing one `[kr, nc]` right
/// operand across the batch (packed exactly once; the batch collapses
/// into a single flattened GEMM). Records one `tensor.matmul_a_bt` timer
/// invocation for the whole batch.
///
/// This is the kernel behind attention scores (`q·kᵀ` per head) and the
/// tied MLM decoder (`h·Eᵀ`), neither of which materializes a transpose.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the batched shapes.
#[allow(clippy::too_many_arguments)]
pub fn matmul_a_bt_batch_acc(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    lb: usize,
    m: usize,
    nc: usize,
    kr: usize,
    rhs_broadcast: bool,
) {
    let _obs = OBS_MATMUL_A_BT.start();
    assert_eq!(a.len(), lb * m * nc, "matmul_bt batch lhs length");
    let b_len = if rhs_broadcast { kr * nc } else { lb * kr * nc };
    assert_eq!(b.len(), b_len, "matmul_bt batch rhs length");
    assert_eq!(c.len(), lb * m * kr, "matmul_bt batch out length");
    FLOPS_MATMUL_A_BT.add(2 * lb * m * nc * kr);
    if rhs_broadcast || lb == 1 {
        gemm_strided(a, nc, 1, b, 1, nc, c, lb * m, nc, kr);
        return;
    }
    batch_gemms(c, lb, m * kr, 2 * m * nc * kr, |bi, cb| {
        gemm_strided(
            &a[bi * m * nc..][..m * nc],
            nc,
            1,
            &b[bi * kr * nc..][..kr * nc],
            1,
            nc,
            cb,
            m,
            nc,
            kr,
        );
    });
}

// ---------------------------------------------------------------------------
// Naive reference GEMMs (retained for bench_kernels and the proptests)
// ---------------------------------------------------------------------------

/// Serial reference for [`matmul_acc`]: the previous naive `i-k-j` loop
/// (with its zero-skip fast path). Retained so `bench_kernels` and the
/// kernel proptests can pin the packed implementation against it.
pub fn matmul_acc_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul lhs length");
    assert_eq!(b.len(), k * n, "matmul rhs length");
    assert_eq!(c.len(), m * n, "matmul out length");
    for (i, c_row) in c.chunks_mut(n).enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Serial reference for [`matmul_at_b_acc`]: the previous naive `p`-outer
/// streaming loop.
pub fn matmul_at_b_acc_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "matmul_at lhs length");
    assert_eq!(b.len(), k * n, "matmul_at rhs length");
    assert_eq!(c.len(), m * n, "matmul_at out length");
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Serial reference for [`matmul_a_bt_acc`]: the previous naive
/// per-element dot product (summed into a local temporary, then added to
/// `c` — identical to the packed chain when `c` starts zeroed).
pub fn matmul_a_bt_acc_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * n, "matmul_bt lhs length");
    assert_eq!(b.len(), k * n, "matmul_bt rhs length");
    assert_eq!(c.len(), m * k, "matmul_bt out length");
    for (i, c_row) in c.chunks_mut(k).enumerate() {
        let a_row = &a[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * n..(j + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

/// In-place numerically-stable softmax over contiguous rows of width
/// `width`. Rows are independent and run on pool threads in blocks.
///
/// # Panics
///
/// Panics if `width` is 0 or does not divide `data.len()`.
pub fn softmax_rows(data: &mut [f32], width: usize) {
    let _obs = OBS_SOFTMAX.start();
    assert!(width > 0, "softmax row width must be > 0");
    assert_eq!(
        data.len() % width,
        0,
        "softmax data not a multiple of width"
    );
    let rows = data.len() / width;
    let w = pool::workers_for(rows, 8 * width);
    if w <= 1 {
        for row in data.chunks_mut(width) {
            softmax_row(row);
        }
        return;
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = data
        .chunks_mut(block_rows * width)
        .map(|block| {
            move || {
                for row in block.chunks_mut(width) {
                    softmax_row(row);
                }
            }
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Per-row body shared by the serial and parallel paths of
/// [`softmax_rows`].
#[inline]
fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// In-place log-softmax over contiguous rows of width `width`. Rows are
/// independent and run on pool threads in blocks.
///
/// # Panics
///
/// Panics if `width` is 0 or does not divide `data.len()`.
pub fn log_softmax_rows(data: &mut [f32], width: usize) {
    let _obs = OBS_LOG_SOFTMAX.start();
    assert!(width > 0, "log_softmax row width must be > 0");
    assert_eq!(
        data.len() % width,
        0,
        "log_softmax data not a multiple of width"
    );
    let rows = data.len() / width;
    let w = pool::workers_for(rows, 8 * width);
    if w <= 1 {
        for row in data.chunks_mut(width) {
            log_softmax_row(row);
        }
        return;
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = data
        .chunks_mut(block_rows * width)
        .map(|block| {
            move || {
                for row in block.chunks_mut(width) {
                    log_softmax_row(row);
                }
            }
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Per-row body shared by the serial and parallel paths of
/// [`log_softmax_rows`].
#[inline]
fn log_softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter() {
        sum += (*v - max).exp();
    }
    let log_z = max + sum.ln();
    for v in row.iter_mut() {
        *v -= log_z;
    }
}

/// Normalizes each row to zero mean / unit variance; returns `(mean, rstd)`
/// per row for use by the backward pass. Row blocks run on pool threads,
/// each writing its own span of the `mean` / `rstd` outputs.
///
/// # Panics
///
/// Panics if `width` is 0 or does not divide `data.len()`.
pub fn layer_norm_rows(data: &mut [f32], width: usize, eps: f32) -> (Vec<f32>, Vec<f32>) {
    let _obs = OBS_LAYER_NORM.start();
    assert!(width > 0, "layer_norm row width must be > 0");
    assert_eq!(
        data.len() % width,
        0,
        "layer_norm data not a multiple of width"
    );
    let rows = data.len() / width;
    let mut means = vec![0.0f32; rows];
    let mut rstds = vec![0.0f32; rows];
    let w = pool::workers_for(rows, 6 * width);
    if w <= 1 {
        for ((row, mv), rv) in data.chunks_mut(width).zip(&mut means).zip(&mut rstds) {
            let (mean, rstd) = layer_norm_row(row, width, eps);
            *mv = mean;
            *rv = rstd;
        }
        return (means, rstds);
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = data
        .chunks_mut(block_rows * width)
        .zip(
            means
                .chunks_mut(block_rows)
                .zip(rstds.chunks_mut(block_rows)),
        )
        .map(|(block, (mean_block, rstd_block))| {
            move || {
                for ((row, mv), rv) in block.chunks_mut(width).zip(mean_block).zip(rstd_block) {
                    let (mean, rstd) = layer_norm_row(row, width, eps);
                    *mv = mean;
                    *rv = rstd;
                }
            }
        })
        .collect();
    pool::run_jobs(jobs);
    (means, rstds)
}

/// Per-row body shared by all layer-norm entry points: normalizes the row
/// in place and returns its `(mean, rstd)`.
#[inline]
fn layer_norm_row(row: &mut [f32], width: usize, eps: f32) -> (f32, f32) {
    let mean = row.iter().sum::<f32>() / width as f32;
    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / width as f32;
    let rstd = 1.0 / (var + eps).sqrt();
    for v in row.iter_mut() {
        *v = (*v - mean) * rstd;
    }
    (mean, rstd)
}

/// Like [`layer_norm_rows`] but writes the per-row `rstd` values into a
/// caller-provided (typically recycled) buffer and discards the means,
/// which the backward pass never needs. Same arithmetic, same order —
/// bit-identical normalized outputs.
///
/// # Panics
///
/// Panics if `width` is 0, does not divide `data.len()`, or `rstd_out` is
/// not exactly one element per row.
pub fn layer_norm_rows_rstd(data: &mut [f32], width: usize, eps: f32, rstd_out: &mut [f32]) {
    let _obs = OBS_LAYER_NORM.start();
    assert!(width > 0, "layer_norm row width must be > 0");
    assert_eq!(
        data.len() % width,
        0,
        "layer_norm data not a multiple of width"
    );
    let rows = data.len() / width;
    assert_eq!(rstd_out.len(), rows, "layer_norm rstd_out rows");
    let w = pool::workers_for(rows, 6 * width);
    if w <= 1 {
        for (row, rv) in data.chunks_mut(width).zip(rstd_out) {
            let (_mean, rstd) = layer_norm_row(row, width, eps);
            *rv = rstd;
        }
        return;
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = data
        .chunks_mut(block_rows * width)
        .zip(rstd_out.chunks_mut(block_rows))
        .map(|(block, rstd_block)| {
            move || {
                for (row, rv) in block.chunks_mut(width).zip(rstd_block) {
                    let (_mean, rstd) = layer_norm_row(row, width, eps);
                    *rv = rstd;
                }
            }
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Backward of [`layer_norm_rows`]: given normalized outputs `y`, per-row
/// `rstd` and upstream gradient `dy`, accumulates `dx` into `dx_acc`. Row
/// blocks run on pool threads.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `y.len()` and `width`.
pub fn layer_norm_rows_backward(
    y: &[f32],
    rstd: &[f32],
    dy: &[f32],
    dx_acc: &mut [f32],
    width: usize,
) {
    let rows = y.len() / width;
    let _obs = OBS_LAYER_NORM_BWD.start();
    assert_eq!(rstd.len(), rows, "layer_norm backward rstd rows");
    assert_eq!(dy.len(), y.len(), "layer_norm backward dy length");
    assert_eq!(dx_acc.len(), y.len(), "layer_norm backward dx length");
    let workers = pool::workers_for(rows, 8 * width);
    if workers <= 1 {
        layer_norm_backward_block(y, rstd, dy, dx_acc, 0, width);
        return;
    }
    let block_rows = rows.div_ceil(workers).max(1);
    let jobs: Vec<_> = dx_acc
        .chunks_mut(block_rows * width)
        .enumerate()
        .map(|(blk, dx_block)| {
            move || layer_norm_backward_block(y, rstd, dy, dx_block, blk * block_rows, width)
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Row-block body shared by the serial and parallel paths of
/// [`layer_norm_rows_backward`].
#[inline]
fn layer_norm_backward_block(
    y: &[f32],
    rstd: &[f32],
    dy: &[f32],
    dx_block: &mut [f32],
    r0: usize,
    width: usize,
) {
    let w = width as f32;
    for (local, dxs) in dx_block.chunks_mut(width).enumerate() {
        let r = r0 + local;
        let ys = &y[r * width..(r + 1) * width];
        let dys = &dy[r * width..(r + 1) * width];
        let sum_dy: f32 = dys.iter().sum();
        let sum_dy_y: f32 = dys.iter().zip(ys).map(|(a, b)| a * b).sum();
        for ((dx, &yv), &dyv) in dxs.iter_mut().zip(ys).zip(dys) {
            *dx += rstd[r] * (dyv - sum_dy / w - yv * sum_dy_y / w);
        }
    }
}

/// `dst[i] = f(src[i])` for every element, on pool threads for large
/// slices. `work_hint` is the approximate work units each application of
/// `f` costs (used by the pool's spawn threshold; e.g. ~16 for
/// [`tanh_fast`]-family activations).
///
/// # Panics
///
/// Panics if `src` and `dst` lengths differ.
pub fn map_into(src: &[f32], dst: &mut [f32], work_hint: usize, f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(src.len(), dst.len(), "map_into length mismatch");
    pool::for_blocks(dst, work_hint, |offset, block| {
        let len = block.len();
        for (d, &s) in block.iter_mut().zip(&src[offset..offset + len]) {
            *d = f(s);
        }
    });
}

/// `d[i] *= f(x[i])` for every element — the shape of the elementwise
/// backward rules (`dx = dy ⊙ f'(x)`) — on pool threads for large slices.
/// `work_hint` is the per-element cost of `f` in work units.
///
/// # Panics
///
/// Panics if `x` and `d` lengths differ.
pub fn mul_map_inplace(x: &[f32], d: &mut [f32], work_hint: usize, f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(x.len(), d.len(), "mul_map_inplace length mismatch");
    pool::for_blocks(d, work_hint, |offset, block| {
        let len = block.len();
        for (dv, &xv) in block.iter_mut().zip(&x[offset..offset + len]) {
            *dv *= f(xv);
        }
    });
}

/// Backward of [`softmax_rows`]: `dx = y ⊙ (dy - Σ(dy ⊙ y))` per row,
/// where `y` is the saved softmax output. Row blocks run on pool threads.
///
/// # Panics
///
/// Panics if `width` is 0 or the slice lengths disagree.
pub fn softmax_rows_backward(y: &[f32], dy: &[f32], dx: &mut [f32], width: usize) {
    let _obs = OBS_SOFTMAX_BWD.start();
    assert!(width > 0, "softmax backward width must be > 0");
    assert_eq!(dy.len(), y.len(), "softmax backward dy length");
    assert_eq!(dx.len(), y.len(), "softmax backward dx length");
    let rows = y.len() / width;
    let w = pool::workers_for(rows, 4 * width);
    if w <= 1 {
        softmax_backward_block(y, dy, dx, 0, width);
        return;
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = dx
        .chunks_mut(block_rows * width)
        .enumerate()
        .map(|(blk, dx_block)| {
            move || softmax_backward_block(y, dy, dx_block, blk * block_rows * width, width)
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Row-block body shared by the serial and parallel paths of
/// [`softmax_rows_backward`]; `at0` is the element offset of the block.
#[inline]
fn softmax_backward_block(y: &[f32], dy: &[f32], dx_block: &mut [f32], at0: usize, width: usize) {
    for (local, dxrow) in dx_block.chunks_mut(width).enumerate() {
        let at = at0 + local * width;
        let yrow = &y[at..at + width];
        let dyrow = &dy[at..at + width];
        let dot: f32 = yrow.iter().zip(dyrow).map(|(a, b)| a * b).sum();
        for ((d, &yv), &dyv) in dxrow.iter_mut().zip(yrow).zip(dyrow) {
            *d = yv * (dyv - dot);
        }
    }
}

/// Backward of [`log_softmax_rows`]: `dx = dy - exp(y) * Σdy` per row,
/// where `y` is the saved log-softmax output. Row blocks run on pool
/// threads.
///
/// # Panics
///
/// Panics if `width` is 0 or the slice lengths disagree.
pub fn log_softmax_rows_backward(y: &[f32], dy: &[f32], dx: &mut [f32], width: usize) {
    let _obs = OBS_LOG_SOFTMAX_BWD.start();
    assert!(width > 0, "log_softmax backward width must be > 0");
    assert_eq!(dy.len(), y.len(), "log_softmax backward dy length");
    assert_eq!(dx.len(), y.len(), "log_softmax backward dx length");
    let rows = y.len() / width;
    let w = pool::workers_for(rows, 6 * width);
    if w <= 1 {
        log_softmax_backward_block(y, dy, dx, 0, width);
        return;
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = dx
        .chunks_mut(block_rows * width)
        .enumerate()
        .map(|(blk, dx_block)| {
            move || log_softmax_backward_block(y, dy, dx_block, blk * block_rows * width, width)
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Row-block body shared by the serial and parallel paths of
/// [`log_softmax_rows_backward`]; `at0` is the element offset of the block.
#[inline]
fn log_softmax_backward_block(
    y: &[f32],
    dy: &[f32],
    dx_block: &mut [f32],
    at0: usize,
    width: usize,
) {
    for (local, dxrow) in dx_block.chunks_mut(width).enumerate() {
        let at = at0 + local * width;
        let yrow = &y[at..at + width];
        let dyrow = &dy[at..at + width];
        let sum_dy: f32 = dyrow.iter().sum();
        for ((d, &yv), &dyv) in dxrow.iter_mut().zip(yrow).zip(dyrow) {
            *d = dyv - yv.exp() * sum_dy;
        }
    }
}

/// Fast `tanh` via the order-7 continued-fraction rational
/// `x (135135 + 17325x² + 378x⁴ + x⁶) / (135135 + 62370x² + 3150x⁴ + 28x⁶)`,
/// clamped to ±1 beyond |x| ≈ 4.97 (where the rational crosses 1).
///
/// Absolute error is below ~2e-6 inside the clamp — numerically
/// indistinguishable from libm `tanh` for training, several times faster,
/// and hot: GELU and the LSTM gates evaluate it millions of times per
/// batch.
pub fn tanh_fast(x: f32) -> f32 {
    if x > 4.97 {
        1.0
    } else if x < -4.97 {
        -1.0
    } else {
        let u = x * x;
        let n = 135135.0 + u * (17325.0 + u * (378.0 + u));
        let d = 135135.0 + u * (62370.0 + u * (3150.0 + u * 28.0));
        x * n / d
    }
}

/// Derivative of [`tanh_fast`]. Because the rational tracks true `tanh` to
/// ~1e-6, the standard `1 - tanh²` identity is consistent with the forward
/// value to the same precision (0 in the clamped region).
pub fn tanh_fast_grad(x: f32) -> f32 {
    if !(-4.97..=4.97).contains(&x) {
        0.0
    } else {
        let t = tanh_fast(x);
        1.0 - t * t
    }
}

/// GELU activation (tanh approximation, as used by BERT).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + tanh_fast(C * (x + 0.044715 * x * x * x)))
}

/// Derivative of [`gelu`] (differentiating the implemented approximant, so
/// analytic and numeric gradients agree).
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = 0.044715 * x * x * x;
    let u = C * (x + x3);
    let t = tanh_fast(u);
    0.5 * (1.0 + t) + 0.5 * x * tanh_fast_grad(u) * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Logistic sigmoid (via [`tanh_fast`]).
pub fn sigmoid(x: f32) -> f32 {
    0.5 * (1.0 + tanh_fast(0.5 * x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a = [1., 2., 3., 4.];
        let b = [5., 6., 7., 8.];
        let mut c = [0.0f32; 4];
        matmul_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_accumulates() {
        let a = [1.0f32];
        let b = [2.0f32];
        let mut c = [10.0f32];
        matmul_acc(&a, &b, &mut c, 1, 1, 1);
        assert_eq!(c, [12.0]);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        // a is 3x2 stored (k=3, m=2); a^T is 2x3.
        let a = [1., 2., 3., 4., 5., 6.]; // rows: [1 2], [3 4], [5 6]
        let b = [1., 0., 0., 1., 1., 1.]; // 3x2
        let mut c = [0.0f32; 4]; // 2x2 = a^T(2x3) * b(3x2)
        matmul_at_b_acc(&a, &b, &mut c, 2, 3, 2);
        // a^T = [1 3 5; 2 4 6]; a^T*b = [[1+0+5, 0+3+5],[2+0+6, 0+4+6]]
        assert_eq!(c, [6., 8., 8., 10.]);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        // a: 2x3, b: 2x3 (interpreted as b^T: 3x2) => c: 2x2
        let a = [1., 2., 3., 4., 5., 6.];
        let b = [1., 1., 0., 0., 1., 1.];
        let mut c = [0.0f32; 4];
        matmul_a_bt_acc(&a, &b, &mut c, 2, 3, 2);
        // row0 . brow0 = 1+2+0 = 3; row0 . brow1 = 0+2+3 = 5
        // row1 . brow0 = 4+5 = 9;   row1 . brow1 = 5+6 = 11
        assert_eq!(c, [3., 5., 9., 11.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut d = [1., 2., 3., 1000., 1000., 1000.];
        softmax_rows(&mut d, 3);
        let s0: f32 = d[..3].iter().sum();
        let s1: f32 = d[3..].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6);
        assert!((s1 - 1.0).abs() < 1e-6);
        assert!(d[3..].iter().all(|v| (v - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let src = [0.5f32, -1.0, 2.0, 0.0];
        let mut s = src;
        softmax_rows(&mut s, 4);
        let mut ls = src;
        log_softmax_rows(&mut ls, 4);
        for (a, b) in s.iter().zip(ls.iter()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut d = [1., 2., 3., 4., 10., 20., 30., 40.];
        let (means, rstds) = layer_norm_rows(&mut d, 4, 1e-5);
        assert_eq!(means.len(), 2);
        assert_eq!(rstds.len(), 2);
        for row in d.chunks(4) {
            let m: f32 = row.iter().sum::<f32>() / 4.0;
            let v: f32 = row.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / 4.0;
            assert!(m.abs() < 1e-5, "mean {m}");
            assert!((v - 1.0).abs() < 1e-3, "var {v}");
        }
    }

    #[test]
    fn layer_norm_rstd_variant_matches_full_version() {
        let src = [1.0f32, 2., 3., 4., 10., 20., 30., 40.];
        let mut a = src;
        let (_means, rstds) = layer_norm_rows(&mut a, 4, 1e-5);
        let mut b = src;
        let mut rstd_out = [0.0f32; 2];
        layer_norm_rows_rstd(&mut b, 4, 1e-5, &mut rstd_out);
        assert_eq!(a, b);
        assert_eq!(&rstds[..], &rstd_out[..]);
    }

    #[test]
    fn tanh_fast_accuracy_and_continuity() {
        let mut x = -6.0f32;
        while x < 6.0 {
            let err = (tanh_fast(x) - x.tanh()).abs();
            assert!(err < 1e-4, "x={x} err={err}");
            x += 0.01;
        }
        // Nearly continuous at the clamp boundary.
        assert!((tanh_fast(4.97) - 1.0).abs() < 1e-4);
        assert_eq!(tanh_fast(100.0), 1.0);
        assert_eq!(tanh_fast(-100.0), -1.0);
    }

    #[test]
    fn tanh_fast_grad_matches_finite_difference() {
        for &x in &[-4.0f32, -2.9, -1.0, -0.1, 0.0, 0.5, 1.5, 2.9, 4.0] {
            let eps = 1e-3;
            let num = (tanh_fast(x + eps) - tanh_fast(x - eps)) / (2.0 * eps);
            let ana = tanh_fast_grad(x);
            assert!(
                (ana - num).abs() < 2e-3,
                "x={x} analytic={ana} numeric={num}"
            );
        }
        assert_eq!(tanh_fast_grad(5.0), 0.0);
        assert!((tanh_fast_grad(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Large inputs saturate to identity / zero.
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0] {
            let eps = 1e-3;
            let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(x) - num).abs() < 1e-2,
                "x={x} analytic={} numeric={num}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
    }
}
