//! Raw `f32` slice kernels shared by forward and backward passes.
//!
//! These functions operate on plain slices so they can be reused by the
//! [`crate::Tensor`] convenience methods, the autograd backward
//! implementations in `ops`, and the Criterion micro-benchmarks without any
//! graph overhead. All layouts are row-major.
//!
//! The matrix and row kernels parallelize over contiguous blocks of output
//! rows through [`crate::pool`] when the operation is large enough.
//! Every output element is accumulated in the same floating-point order
//! regardless of thread count, so results are bit-identical from
//! `CLINFL_THREADS=1` to the full budget (see the pool module's threading
//! model).

use crate::pool;
use clinfl_obs::KernelTimer;

// Per-op wall-time + invocation counters (see DESIGN.md §3e). Each is a
// static so the registry handles resolve once; a timed call costs two
// clock reads and two relaxed atomic adds.
static OBS_MATMUL: KernelTimer = KernelTimer::new("tensor.matmul");
static OBS_MATMUL_AT_B: KernelTimer = KernelTimer::new("tensor.matmul_at_b");
static OBS_MATMUL_A_BT: KernelTimer = KernelTimer::new("tensor.matmul_a_bt");
static OBS_SOFTMAX: KernelTimer = KernelTimer::new("tensor.softmax");
static OBS_SOFTMAX_BWD: KernelTimer = KernelTimer::new("tensor.softmax_backward");
static OBS_LOG_SOFTMAX: KernelTimer = KernelTimer::new("tensor.log_softmax");
static OBS_LOG_SOFTMAX_BWD: KernelTimer = KernelTimer::new("tensor.log_softmax_backward");
static OBS_LAYER_NORM: KernelTimer = KernelTimer::new("tensor.layer_norm");
static OBS_LAYER_NORM_BWD: KernelTimer = KernelTimer::new("tensor.layer_norm_backward");

/// Row-block body shared by the serial and parallel paths of
/// [`matmul_acc`]: accumulates rows `i0..` of `c` in `i-k-j` order.
#[inline]
fn matmul_rows_block(a: &[f32], b: &[f32], c_block: &mut [f32], i0: usize, k: usize, n: usize) {
    for (r, c_row) in c_block.chunks_mut(n).enumerate() {
        let i = i0 + r;
        let a_row = &a[i * k..(i + 1) * k];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// `c[m, n] += a[m, k] * b[k, n]` (single matrix, accumulate).
///
/// The serial inner loops use an `i-k-j` order so the innermost loop
/// streams both `b` and `c` rows sequentially — the main single-thread
/// cache-friendliness lever without unsafe SIMD — and blocks of `c` rows
/// run on pool threads, which is where the multi-core speedup comes from.
/// Zero entries of `a` skip their row-update entirely (common under
/// dropout and padding masks).
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n`, `m*n`.
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let _obs = OBS_MATMUL.start();
    assert_eq!(a.len(), m * k, "matmul lhs length");
    assert_eq!(b.len(), k * n, "matmul rhs length");
    assert_eq!(c.len(), m * n, "matmul out length");
    if m == 0 || n == 0 {
        return;
    }
    let w = pool::workers_for(m, 2 * k * n);
    if w <= 1 {
        matmul_rows_block(a, b, c, 0, k, n);
        return;
    }
    let block_rows = m.div_ceil(w);
    let jobs: Vec<_> = c
        .chunks_mut(block_rows * n)
        .enumerate()
        .map(|(blk, c_block)| move || matmul_rows_block(a, b, c_block, blk * block_rows, k, n))
        .collect();
    pool::run_jobs(jobs);
}

/// `c[m, n] += a[k, m]^T * b[k, n]` — matmul with the left operand
/// transposed, used by backward passes (`dW = x^T dy`).
///
/// The serial path keeps the cache-friendly `p`-outer order (streaming `a`
/// and `b` once). The parallel path partitions `c` rows and accumulates
/// each row over ascending `p` — the same per-element addition order as
/// the serial loop, so both paths produce bit-identical results.
///
/// # Panics
///
/// Panics if the slice lengths do not match `k*m`, `k*n`, `m*n`.
pub fn matmul_at_b_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let _obs = OBS_MATMUL_AT_B.start();
    assert_eq!(a.len(), k * m, "matmul_at lhs length");
    assert_eq!(b.len(), k * n, "matmul_at rhs length");
    assert_eq!(c.len(), m * n, "matmul_at out length");
    if m == 0 || n == 0 {
        return;
    }
    let w = pool::workers_for(m, 2 * k * n);
    if w <= 1 {
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let c_row = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += av * bv;
                }
            }
        }
        return;
    }
    let block_rows = m.div_ceil(w);
    let jobs: Vec<_> = c
        .chunks_mut(block_rows * n)
        .enumerate()
        .map(|(blk, c_block)| {
            move || {
                let i0 = blk * block_rows;
                for (r, c_row) in c_block.chunks_mut(n).enumerate() {
                    let i = i0 + r;
                    for p in 0..k {
                        let av = a[p * m + i];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[p * n..(p + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Row-block body shared by the serial and parallel paths of
/// [`matmul_a_bt_acc`]: each output element is an independent dot product.
#[inline]
fn matmul_a_bt_rows_block(
    a: &[f32],
    b: &[f32],
    c_block: &mut [f32],
    i0: usize,
    n: usize,
    k: usize,
) {
    for (r, c_row) in c_block.chunks_mut(k).enumerate() {
        let i = i0 + r;
        let a_row = &a[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * n..(j + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

/// `c[m, k] += a[m, n] * b[k, n]^T` — matmul with the right operand
/// transposed, used by backward passes (`dx = dy W^T`). Each output
/// element is an independent dot product, so `c` rows parallelize
/// directly.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*n`, `k*n`, `m*k`.
pub fn matmul_a_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    let _obs = OBS_MATMUL_A_BT.start();
    assert_eq!(a.len(), m * n, "matmul_bt lhs length");
    assert_eq!(b.len(), k * n, "matmul_bt rhs length");
    assert_eq!(c.len(), m * k, "matmul_bt out length");
    if m == 0 || k == 0 {
        return;
    }
    let w = pool::workers_for(m, 2 * k * n);
    if w <= 1 {
        matmul_a_bt_rows_block(a, b, c, 0, n, k);
        return;
    }
    let block_rows = m.div_ceil(w);
    let jobs: Vec<_> = c
        .chunks_mut(block_rows * k)
        .enumerate()
        .map(|(blk, c_block)| move || matmul_a_bt_rows_block(a, b, c_block, blk * block_rows, n, k))
        .collect();
    pool::run_jobs(jobs);
}

/// In-place numerically-stable softmax over contiguous rows of width
/// `width`. Rows are independent and run on pool threads in blocks.
///
/// # Panics
///
/// Panics if `width` is 0 or does not divide `data.len()`.
pub fn softmax_rows(data: &mut [f32], width: usize) {
    let _obs = OBS_SOFTMAX.start();
    assert!(width > 0, "softmax row width must be > 0");
    assert_eq!(
        data.len() % width,
        0,
        "softmax data not a multiple of width"
    );
    let rows = data.len() / width;
    let w = pool::workers_for(rows, 8 * width);
    if w <= 1 {
        for row in data.chunks_mut(width) {
            softmax_row(row);
        }
        return;
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = data
        .chunks_mut(block_rows * width)
        .map(|block| {
            move || {
                for row in block.chunks_mut(width) {
                    softmax_row(row);
                }
            }
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Per-row body shared by the serial and parallel paths of
/// [`softmax_rows`].
#[inline]
fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// In-place log-softmax over contiguous rows of width `width`. Rows are
/// independent and run on pool threads in blocks.
///
/// # Panics
///
/// Panics if `width` is 0 or does not divide `data.len()`.
pub fn log_softmax_rows(data: &mut [f32], width: usize) {
    let _obs = OBS_LOG_SOFTMAX.start();
    assert!(width > 0, "log_softmax row width must be > 0");
    assert_eq!(
        data.len() % width,
        0,
        "log_softmax data not a multiple of width"
    );
    let rows = data.len() / width;
    let w = pool::workers_for(rows, 8 * width);
    if w <= 1 {
        for row in data.chunks_mut(width) {
            log_softmax_row(row);
        }
        return;
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = data
        .chunks_mut(block_rows * width)
        .map(|block| {
            move || {
                for row in block.chunks_mut(width) {
                    log_softmax_row(row);
                }
            }
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Per-row body shared by the serial and parallel paths of
/// [`log_softmax_rows`].
#[inline]
fn log_softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter() {
        sum += (*v - max).exp();
    }
    let log_z = max + sum.ln();
    for v in row.iter_mut() {
        *v -= log_z;
    }
}

/// Normalizes each row to zero mean / unit variance; returns `(mean, rstd)`
/// per row for use by the backward pass. Row blocks run on pool threads,
/// each writing its own span of the `mean` / `rstd` outputs.
///
/// # Panics
///
/// Panics if `width` is 0 or does not divide `data.len()`.
pub fn layer_norm_rows(data: &mut [f32], width: usize, eps: f32) -> (Vec<f32>, Vec<f32>) {
    let _obs = OBS_LAYER_NORM.start();
    assert!(width > 0, "layer_norm row width must be > 0");
    assert_eq!(
        data.len() % width,
        0,
        "layer_norm data not a multiple of width"
    );
    let rows = data.len() / width;
    let mut means = vec![0.0f32; rows];
    let mut rstds = vec![0.0f32; rows];
    let w = pool::workers_for(rows, 6 * width);
    if w <= 1 {
        for ((row, mv), rv) in data.chunks_mut(width).zip(&mut means).zip(&mut rstds) {
            let (mean, rstd) = layer_norm_row(row, width, eps);
            *mv = mean;
            *rv = rstd;
        }
        return (means, rstds);
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = data
        .chunks_mut(block_rows * width)
        .zip(
            means
                .chunks_mut(block_rows)
                .zip(rstds.chunks_mut(block_rows)),
        )
        .map(|(block, (mean_block, rstd_block))| {
            move || {
                for ((row, mv), rv) in block.chunks_mut(width).zip(mean_block).zip(rstd_block) {
                    let (mean, rstd) = layer_norm_row(row, width, eps);
                    *mv = mean;
                    *rv = rstd;
                }
            }
        })
        .collect();
    pool::run_jobs(jobs);
    (means, rstds)
}

/// Per-row body shared by all layer-norm entry points: normalizes the row
/// in place and returns its `(mean, rstd)`.
#[inline]
fn layer_norm_row(row: &mut [f32], width: usize, eps: f32) -> (f32, f32) {
    let mean = row.iter().sum::<f32>() / width as f32;
    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / width as f32;
    let rstd = 1.0 / (var + eps).sqrt();
    for v in row.iter_mut() {
        *v = (*v - mean) * rstd;
    }
    (mean, rstd)
}

/// Like [`layer_norm_rows`] but writes the per-row `rstd` values into a
/// caller-provided (typically recycled) buffer and discards the means,
/// which the backward pass never needs. Same arithmetic, same order —
/// bit-identical normalized outputs.
///
/// # Panics
///
/// Panics if `width` is 0, does not divide `data.len()`, or `rstd_out` is
/// not exactly one element per row.
pub fn layer_norm_rows_rstd(data: &mut [f32], width: usize, eps: f32, rstd_out: &mut [f32]) {
    let _obs = OBS_LAYER_NORM.start();
    assert!(width > 0, "layer_norm row width must be > 0");
    assert_eq!(
        data.len() % width,
        0,
        "layer_norm data not a multiple of width"
    );
    let rows = data.len() / width;
    assert_eq!(rstd_out.len(), rows, "layer_norm rstd_out rows");
    let w = pool::workers_for(rows, 6 * width);
    if w <= 1 {
        for (row, rv) in data.chunks_mut(width).zip(rstd_out) {
            let (_mean, rstd) = layer_norm_row(row, width, eps);
            *rv = rstd;
        }
        return;
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = data
        .chunks_mut(block_rows * width)
        .zip(rstd_out.chunks_mut(block_rows))
        .map(|(block, rstd_block)| {
            move || {
                for (row, rv) in block.chunks_mut(width).zip(rstd_block) {
                    let (_mean, rstd) = layer_norm_row(row, width, eps);
                    *rv = rstd;
                }
            }
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Backward of [`layer_norm_rows`]: given normalized outputs `y`, per-row
/// `rstd` and upstream gradient `dy`, accumulates `dx` into `dx_acc`. Row
/// blocks run on pool threads.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `y.len()` and `width`.
pub fn layer_norm_rows_backward(
    y: &[f32],
    rstd: &[f32],
    dy: &[f32],
    dx_acc: &mut [f32],
    width: usize,
) {
    let rows = y.len() / width;
    let _obs = OBS_LAYER_NORM_BWD.start();
    assert_eq!(rstd.len(), rows, "layer_norm backward rstd rows");
    assert_eq!(dy.len(), y.len(), "layer_norm backward dy length");
    assert_eq!(dx_acc.len(), y.len(), "layer_norm backward dx length");
    let workers = pool::workers_for(rows, 8 * width);
    if workers <= 1 {
        layer_norm_backward_block(y, rstd, dy, dx_acc, 0, width);
        return;
    }
    let block_rows = rows.div_ceil(workers).max(1);
    let jobs: Vec<_> = dx_acc
        .chunks_mut(block_rows * width)
        .enumerate()
        .map(|(blk, dx_block)| {
            move || layer_norm_backward_block(y, rstd, dy, dx_block, blk * block_rows, width)
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Row-block body shared by the serial and parallel paths of
/// [`layer_norm_rows_backward`].
#[inline]
fn layer_norm_backward_block(
    y: &[f32],
    rstd: &[f32],
    dy: &[f32],
    dx_block: &mut [f32],
    r0: usize,
    width: usize,
) {
    let w = width as f32;
    for (local, dxs) in dx_block.chunks_mut(width).enumerate() {
        let r = r0 + local;
        let ys = &y[r * width..(r + 1) * width];
        let dys = &dy[r * width..(r + 1) * width];
        let sum_dy: f32 = dys.iter().sum();
        let sum_dy_y: f32 = dys.iter().zip(ys).map(|(a, b)| a * b).sum();
        for ((dx, &yv), &dyv) in dxs.iter_mut().zip(ys).zip(dys) {
            *dx += rstd[r] * (dyv - sum_dy / w - yv * sum_dy_y / w);
        }
    }
}

/// `dst[i] = f(src[i])` for every element, on pool threads for large
/// slices. `work_hint` is the approximate work units each application of
/// `f` costs (used by the pool's spawn threshold; e.g. ~16 for
/// [`tanh_fast`]-family activations).
///
/// # Panics
///
/// Panics if `src` and `dst` lengths differ.
pub fn map_into(src: &[f32], dst: &mut [f32], work_hint: usize, f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(src.len(), dst.len(), "map_into length mismatch");
    pool::for_blocks(dst, work_hint, |offset, block| {
        let len = block.len();
        for (d, &s) in block.iter_mut().zip(&src[offset..offset + len]) {
            *d = f(s);
        }
    });
}

/// `d[i] *= f(x[i])` for every element — the shape of the elementwise
/// backward rules (`dx = dy ⊙ f'(x)`) — on pool threads for large slices.
/// `work_hint` is the per-element cost of `f` in work units.
///
/// # Panics
///
/// Panics if `x` and `d` lengths differ.
pub fn mul_map_inplace(x: &[f32], d: &mut [f32], work_hint: usize, f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(x.len(), d.len(), "mul_map_inplace length mismatch");
    pool::for_blocks(d, work_hint, |offset, block| {
        let len = block.len();
        for (dv, &xv) in block.iter_mut().zip(&x[offset..offset + len]) {
            *dv *= f(xv);
        }
    });
}

/// Backward of [`softmax_rows`]: `dx = y ⊙ (dy - Σ(dy ⊙ y))` per row,
/// where `y` is the saved softmax output. Row blocks run on pool threads.
///
/// # Panics
///
/// Panics if `width` is 0 or the slice lengths disagree.
pub fn softmax_rows_backward(y: &[f32], dy: &[f32], dx: &mut [f32], width: usize) {
    let _obs = OBS_SOFTMAX_BWD.start();
    assert!(width > 0, "softmax backward width must be > 0");
    assert_eq!(dy.len(), y.len(), "softmax backward dy length");
    assert_eq!(dx.len(), y.len(), "softmax backward dx length");
    let rows = y.len() / width;
    let w = pool::workers_for(rows, 4 * width);
    if w <= 1 {
        softmax_backward_block(y, dy, dx, 0, width);
        return;
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = dx
        .chunks_mut(block_rows * width)
        .enumerate()
        .map(|(blk, dx_block)| {
            move || softmax_backward_block(y, dy, dx_block, blk * block_rows * width, width)
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Row-block body shared by the serial and parallel paths of
/// [`softmax_rows_backward`]; `at0` is the element offset of the block.
#[inline]
fn softmax_backward_block(y: &[f32], dy: &[f32], dx_block: &mut [f32], at0: usize, width: usize) {
    for (local, dxrow) in dx_block.chunks_mut(width).enumerate() {
        let at = at0 + local * width;
        let yrow = &y[at..at + width];
        let dyrow = &dy[at..at + width];
        let dot: f32 = yrow.iter().zip(dyrow).map(|(a, b)| a * b).sum();
        for ((d, &yv), &dyv) in dxrow.iter_mut().zip(yrow).zip(dyrow) {
            *d = yv * (dyv - dot);
        }
    }
}

/// Backward of [`log_softmax_rows`]: `dx = dy - exp(y) * Σdy` per row,
/// where `y` is the saved log-softmax output. Row blocks run on pool
/// threads.
///
/// # Panics
///
/// Panics if `width` is 0 or the slice lengths disagree.
pub fn log_softmax_rows_backward(y: &[f32], dy: &[f32], dx: &mut [f32], width: usize) {
    let _obs = OBS_LOG_SOFTMAX_BWD.start();
    assert!(width > 0, "log_softmax backward width must be > 0");
    assert_eq!(dy.len(), y.len(), "log_softmax backward dy length");
    assert_eq!(dx.len(), y.len(), "log_softmax backward dx length");
    let rows = y.len() / width;
    let w = pool::workers_for(rows, 6 * width);
    if w <= 1 {
        log_softmax_backward_block(y, dy, dx, 0, width);
        return;
    }
    let block_rows = rows.div_ceil(w).max(1);
    let jobs: Vec<_> = dx
        .chunks_mut(block_rows * width)
        .enumerate()
        .map(|(blk, dx_block)| {
            move || log_softmax_backward_block(y, dy, dx_block, blk * block_rows * width, width)
        })
        .collect();
    pool::run_jobs(jobs);
}

/// Row-block body shared by the serial and parallel paths of
/// [`log_softmax_rows_backward`]; `at0` is the element offset of the block.
#[inline]
fn log_softmax_backward_block(
    y: &[f32],
    dy: &[f32],
    dx_block: &mut [f32],
    at0: usize,
    width: usize,
) {
    for (local, dxrow) in dx_block.chunks_mut(width).enumerate() {
        let at = at0 + local * width;
        let yrow = &y[at..at + width];
        let dyrow = &dy[at..at + width];
        let sum_dy: f32 = dyrow.iter().sum();
        for ((d, &yv), &dyv) in dxrow.iter_mut().zip(yrow).zip(dyrow) {
            *d = dyv - yv.exp() * sum_dy;
        }
    }
}

/// Fast `tanh` via the order-7 continued-fraction rational
/// `x (135135 + 17325x² + 378x⁴ + x⁶) / (135135 + 62370x² + 3150x⁴ + 28x⁶)`,
/// clamped to ±1 beyond |x| ≈ 4.97 (where the rational crosses 1).
///
/// Absolute error is below ~2e-6 inside the clamp — numerically
/// indistinguishable from libm `tanh` for training, several times faster,
/// and hot: GELU and the LSTM gates evaluate it millions of times per
/// batch.
pub fn tanh_fast(x: f32) -> f32 {
    if x > 4.97 {
        1.0
    } else if x < -4.97 {
        -1.0
    } else {
        let u = x * x;
        let n = 135135.0 + u * (17325.0 + u * (378.0 + u));
        let d = 135135.0 + u * (62370.0 + u * (3150.0 + u * 28.0));
        x * n / d
    }
}

/// Derivative of [`tanh_fast`]. Because the rational tracks true `tanh` to
/// ~1e-6, the standard `1 - tanh²` identity is consistent with the forward
/// value to the same precision (0 in the clamped region).
pub fn tanh_fast_grad(x: f32) -> f32 {
    if !(-4.97..=4.97).contains(&x) {
        0.0
    } else {
        let t = tanh_fast(x);
        1.0 - t * t
    }
}

/// GELU activation (tanh approximation, as used by BERT).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + tanh_fast(C * (x + 0.044715 * x * x * x)))
}

/// Derivative of [`gelu`] (differentiating the implemented approximant, so
/// analytic and numeric gradients agree).
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = 0.044715 * x * x * x;
    let u = C * (x + x3);
    let t = tanh_fast(u);
    0.5 * (1.0 + t) + 0.5 * x * tanh_fast_grad(u) * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Logistic sigmoid (via [`tanh_fast`]).
pub fn sigmoid(x: f32) -> f32 {
    0.5 * (1.0 + tanh_fast(0.5 * x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a = [1., 2., 3., 4.];
        let b = [5., 6., 7., 8.];
        let mut c = [0.0f32; 4];
        matmul_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_accumulates() {
        let a = [1.0f32];
        let b = [2.0f32];
        let mut c = [10.0f32];
        matmul_acc(&a, &b, &mut c, 1, 1, 1);
        assert_eq!(c, [12.0]);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        // a is 3x2 stored (k=3, m=2); a^T is 2x3.
        let a = [1., 2., 3., 4., 5., 6.]; // rows: [1 2], [3 4], [5 6]
        let b = [1., 0., 0., 1., 1., 1.]; // 3x2
        let mut c = [0.0f32; 4]; // 2x2 = a^T(2x3) * b(3x2)
        matmul_at_b_acc(&a, &b, &mut c, 2, 3, 2);
        // a^T = [1 3 5; 2 4 6]; a^T*b = [[1+0+5, 0+3+5],[2+0+6, 0+4+6]]
        assert_eq!(c, [6., 8., 8., 10.]);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        // a: 2x3, b: 2x3 (interpreted as b^T: 3x2) => c: 2x2
        let a = [1., 2., 3., 4., 5., 6.];
        let b = [1., 1., 0., 0., 1., 1.];
        let mut c = [0.0f32; 4];
        matmul_a_bt_acc(&a, &b, &mut c, 2, 3, 2);
        // row0 . brow0 = 1+2+0 = 3; row0 . brow1 = 0+2+3 = 5
        // row1 . brow0 = 4+5 = 9;   row1 . brow1 = 5+6 = 11
        assert_eq!(c, [3., 5., 9., 11.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut d = [1., 2., 3., 1000., 1000., 1000.];
        softmax_rows(&mut d, 3);
        let s0: f32 = d[..3].iter().sum();
        let s1: f32 = d[3..].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6);
        assert!((s1 - 1.0).abs() < 1e-6);
        assert!(d[3..].iter().all(|v| (v - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let src = [0.5f32, -1.0, 2.0, 0.0];
        let mut s = src;
        softmax_rows(&mut s, 4);
        let mut ls = src;
        log_softmax_rows(&mut ls, 4);
        for (a, b) in s.iter().zip(ls.iter()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut d = [1., 2., 3., 4., 10., 20., 30., 40.];
        let (means, rstds) = layer_norm_rows(&mut d, 4, 1e-5);
        assert_eq!(means.len(), 2);
        assert_eq!(rstds.len(), 2);
        for row in d.chunks(4) {
            let m: f32 = row.iter().sum::<f32>() / 4.0;
            let v: f32 = row.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / 4.0;
            assert!(m.abs() < 1e-5, "mean {m}");
            assert!((v - 1.0).abs() < 1e-3, "var {v}");
        }
    }

    #[test]
    fn layer_norm_rstd_variant_matches_full_version() {
        let src = [1.0f32, 2., 3., 4., 10., 20., 30., 40.];
        let mut a = src;
        let (_means, rstds) = layer_norm_rows(&mut a, 4, 1e-5);
        let mut b = src;
        let mut rstd_out = [0.0f32; 2];
        layer_norm_rows_rstd(&mut b, 4, 1e-5, &mut rstd_out);
        assert_eq!(a, b);
        assert_eq!(&rstds[..], &rstd_out[..]);
    }

    #[test]
    fn tanh_fast_accuracy_and_continuity() {
        let mut x = -6.0f32;
        while x < 6.0 {
            let err = (tanh_fast(x) - x.tanh()).abs();
            assert!(err < 1e-4, "x={x} err={err}");
            x += 0.01;
        }
        // Nearly continuous at the clamp boundary.
        assert!((tanh_fast(4.97) - 1.0).abs() < 1e-4);
        assert_eq!(tanh_fast(100.0), 1.0);
        assert_eq!(tanh_fast(-100.0), -1.0);
    }

    #[test]
    fn tanh_fast_grad_matches_finite_difference() {
        for &x in &[-4.0f32, -2.9, -1.0, -0.1, 0.0, 0.5, 1.5, 2.9, 4.0] {
            let eps = 1e-3;
            let num = (tanh_fast(x + eps) - tanh_fast(x - eps)) / (2.0 * eps);
            let ana = tanh_fast_grad(x);
            assert!(
                (ana - num).abs() < 2e-3,
                "x={x} analytic={ana} numeric={num}"
            );
        }
        assert_eq!(tanh_fast_grad(5.0), 0.0);
        assert!((tanh_fast_grad(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Large inputs saturate to identity / zero.
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0] {
            let eps = 1e-3;
            let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(x) - num).abs() < 1e-2,
                "x={x} analytic={} numeric={num}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
    }
}
