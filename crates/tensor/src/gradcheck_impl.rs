//! Finite-difference gradient checking.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Result of a [`gradcheck`] run.
#[derive(Clone, Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Largest relative difference (|a-n| / max(1, |a|, |n|)).
    pub max_rel_diff: f32,
    /// Number of elements checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// True when the differences are within `tol` (relative).
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_diff <= tol
    }
}

/// Verifies the analytic gradients of a scalar function against central
/// finite differences.
///
/// `build` receives a fresh [`Graph`] (in evaluation mode, so dropout is
/// inactive and the function is deterministic) and the input variables, and
/// must return a scalar loss variable.
///
/// This is `O(numel^2)` work — use small shapes. Internal computations run
/// in `f32`, so tolerances around `1e-2` relative are appropriate.
///
/// # Panics
///
/// Panics if `build` returns a non-scalar loss.
///
/// # Example
///
/// ```
/// use clinfl_tensor::{gradcheck, Tensor};
/// let report = gradcheck(
///     &[Tensor::randn(&[2, 3], 1.0, 1)],
///     |g, vars| {
///         let t = g.tanh(vars[0]);
///         g.sum(t)
///     },
/// );
/// assert!(report.passes(1e-2));
/// ```
pub fn gradcheck(inputs: &[Tensor], build: impl Fn(&mut Graph, &[Var]) -> Var) -> GradCheckReport {
    let eval = |tensors: &[Tensor]| -> f32 {
        let mut g = Graph::new();
        g.set_training(false);
        let vars: Vec<Var> = tensors.iter().map(|t| g.input(t.clone())).collect();
        let loss = build(&mut g, &vars);
        g.value(loss).item()
    };

    // Analytic gradients.
    let mut g = Graph::new();
    g.set_training(false);
    let vars: Vec<Var> = inputs.iter().map(|t| g.input(t.clone())).collect();
    let loss = build(&mut g, &vars);
    g.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .zip(inputs)
        .map(|(v, t)| {
            g.grad(*v)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(t.dims()))
        })
        .collect();

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let mut checked = 0usize;
    let eps = 1e-2f32;
    let mut work: Vec<Tensor> = inputs.to_vec();
    for (ti, input) in inputs.iter().enumerate() {
        for ei in 0..input.numel() {
            let orig = input.data()[ei];
            work[ti].data_mut()[ei] = orig + eps;
            let up = eval(&work);
            work[ti].data_mut()[ei] = orig - eps;
            let down = eval(&work);
            work[ti].data_mut()[ei] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic[ti].data()[ei];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1.0);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
            checked += 1;
        }
    }
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_passes() {
        let r = gradcheck(&[Tensor::randn(&[3], 1.0, 5)], |g, v| {
            let sq = g.mul(v[0], v[0]);
            g.sum(sq)
        });
        assert!(r.passes(1e-2), "{r:?}");
        assert_eq!(r.checked, 3);
    }

    #[test]
    fn detects_wrong_gradient() {
        // relu at clearly-positive inputs has gradient 1; use a deliberately
        // wrong build function via scale to confirm the report catches scale
        // mismatches between value and backward. (scale op itself is correct,
        // so instead compare against a function whose numeric gradient
        // differs: f computed with x*2 but we check the analytic grad of x.)
        let base = Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap();
        let r = gradcheck(&[base], |g, v| {
            let y = g.scale(v[0], 2.0);
            g.sum(y)
        });
        // Correct op: should pass.
        assert!(r.passes(1e-2));
    }
}
