//! Shared worker-pool layer: one global thread budget for every parallel
//! region in the workspace.
//!
//! # Threading model
//!
//! A single budget of `CLINFL_THREADS` compute threads (default: the
//! machine's available parallelism) is shared by **both** levels of
//! parallelism in the stack:
//!
//! * **Kernel level** — the hot tensor kernels ([`crate::kernels`]) split
//!   their output rows into contiguous blocks and run the blocks on scoped
//!   threads via [`run_jobs`]. Row blocks are independent and each output
//!   element is accumulated in exactly the same floating-point order as the
//!   serial loop, so results are **bit-identical for every thread count**.
//! * **Site level** — each simulated federated site trains on its own
//!   thread (see `clinfl-flare`), but heavy compute is bracketed by a
//!   [`compute_permit`], a counting semaphore with `CLINFL_THREADS`
//!   permits. With `CLINFL_THREADS=1` site training is fully serialized,
//!   restoring the sequential round schedule.
//!
//! The two levels cooperate through a global active-worker count:
//! [`workers_for`] plans each parallel region against
//! `CLINFL_THREADS - active_workers()`, so kernels running inside several
//! concurrently-permitted sites automatically shrink toward serial instead
//! of oversubscribing the machine.
//!
//! Regions below [`WORK_PER_SPAWN`] work units per extra thread stay
//! serial: scoped threads are spawned per region (no persistent pool), so
//! fan-out only pays off once a block is worth far more than a thread
//! spawn (~10 µs).
//!
//! # Configuration
//!
//! * `CLINFL_THREADS=N` — cap the budget to `N` threads (`1` = serial).
//!   Read once, lazily.
//! * [`set_threads`] — programmatic override, e.g. from tests or the
//!   bench harness; takes precedence over the environment from then on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Approximate work units (inner-loop multiply-adds) a block must carry
/// before it is worth one extra scoped thread.
pub const WORK_PER_SPAWN: usize = 32_768;

/// Configured thread budget; 0 means "not yet resolved".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Threads currently executing compute: held site permits plus extra
/// kernel workers inside active [`run_jobs`] regions.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The configured thread budget.
///
/// Resolution order: a prior [`set_threads`] call, else the
/// `CLINFL_THREADS` environment variable, else
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn num_threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = std::env::var("CLINFL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // Racing initializers resolve to the same value, so a plain store is
    // fine.
    THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the thread budget (minimum 1), e.g. to compare serial and
/// parallel execution within one process. Threads blocked on
/// [`compute_permit`] re-evaluate against the new budget immediately.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn set_threads(n: usize) {
    assert!(n >= 1, "thread budget must be at least 1");
    THREADS.store(n, Ordering::Relaxed);
    permit_state().notify_all();
}

/// Number of threads currently executing compute under this pool's
/// accounting (site permits + extra kernel workers).
pub fn active_workers() -> usize {
    ACTIVE.load(Ordering::Relaxed)
}

/// Plans a parallel region: how many workers to use for `units`
/// independent work items of roughly `work_per_unit` work units each.
///
/// The result is bounded by the remaining thread budget
/// (`num_threads() - active_workers()`, at least 1), by `units`, and by
/// the total work divided by [`WORK_PER_SPAWN`] so small regions stay
/// serial. Always at least 1.
pub fn workers_for(units: usize, work_per_unit: usize) -> usize {
    let budget = num_threads()
        .saturating_sub(ACTIVE.load(Ordering::Relaxed))
        .max(1);
    let by_work = units
        .saturating_mul(work_per_unit)
        .checked_div(WORK_PER_SPAWN)
        .unwrap_or(0)
        .max(1);
    budget.min(units.max(1)).min(by_work)
}

/// Runs pre-partitioned jobs of one parallel region.
///
/// One job runs inline on the calling thread; the rest run on scoped
/// threads (registered as active workers for the duration, so nested
/// regions plan against a reduced budget). An empty job list is a no-op;
/// a single job runs inline with no threading machinery at all.
pub fn run_jobs<F: FnOnce() + Send>(jobs: Vec<F>) {
    let mut jobs = jobs.into_iter();
    let Some(first) = jobs.next() else { return };
    let rest: Vec<F> = jobs.collect();
    if rest.is_empty() {
        first();
        return;
    }
    let extra = rest.len();
    ACTIVE.fetch_add(extra, Ordering::Relaxed);
    std::thread::scope(|s| {
        for job in rest {
            s.spawn(job);
        }
        first();
    });
    ACTIVE.fetch_sub(extra, Ordering::Relaxed);
}

/// Splits `data` into per-worker blocks and runs
/// `f(offset, block)` for each, in parallel when the region is large
/// enough. `offset` is the index of the block's first element within
/// `data`, letting `f` read companion slices at matching positions.
pub fn for_blocks<T, F>(data: &mut [T], work_per_item: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let w = workers_for(data.len(), work_per_item);
    if w <= 1 {
        f(0, data);
        return;
    }
    let block = data.len().div_ceil(w);
    let jobs: Vec<_> = data
        .chunks_mut(block)
        .enumerate()
        .map(|(j, chunk)| {
            let f = &f;
            move || f(j * block, chunk)
        })
        .collect();
    run_jobs(jobs);
}

/// Counting-semaphore state for site-level compute permits.
struct PermitState {
    in_use: Mutex<usize>,
    available: Condvar,
}

impl PermitState {
    fn lock(&self) -> MutexGuard<'_, usize> {
        self.in_use.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn notify_all(&self) {
        self.available.notify_all();
    }
}

fn permit_state() -> &'static PermitState {
    static STATE: std::sync::OnceLock<PermitState> = std::sync::OnceLock::new();
    STATE.get_or_init(|| PermitState {
        in_use: Mutex::new(0),
        available: Condvar::new(),
    })
}

/// RAII guard for one unit of the site-level compute budget; released on
/// drop. See [`compute_permit`].
#[must_use = "the permit serializes compute only while it is held"]
pub struct ComputePermit(());

impl Drop for ComputePermit {
    fn drop(&mut self) {
        let state = permit_state();
        let mut in_use = state.lock();
        *in_use = in_use.saturating_sub(1);
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
        drop(in_use);
        state.available.notify_one();
    }
}

/// Blocks until one of the `CLINFL_THREADS` compute permits is free, then
/// claims it for the returned guard's lifetime.
///
/// Federated site threads take a permit around local training /
/// validation, so at most `CLINFL_THREADS` sites compute concurrently —
/// with a budget of 1 the round degenerates to the strict sequential
/// schedule. Permit holders count as active workers, shrinking the budget
/// kernel regions plan against.
pub fn compute_permit() -> ComputePermit {
    let state = permit_state();
    let mut in_use = state.lock();
    while *in_use >= num_threads() {
        in_use = state
            .available
            .wait(in_use)
            .unwrap_or_else(|e| e.into_inner());
    }
    *in_use += 1;
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    ComputePermit(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Serializes tests that reconfigure the global budget.
    fn config_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn budget_override_roundtrips() {
        let _guard = config_lock();
        set_threads(3);
        assert_eq!(num_threads(), 3);
        set_threads(1);
        assert_eq!(num_threads(), 1);
        set_threads(4);
    }

    #[test]
    fn workers_respect_units_work_and_budget() {
        let _guard = config_lock();
        set_threads(4);
        // Tiny region: serial.
        assert_eq!(workers_for(8, 4), 1);
        // Large region: capped by the budget.
        assert_eq!(workers_for(1 << 20, 64), 4);
        // Fewer units than budget: capped by units.
        assert_eq!(workers_for(2, WORK_PER_SPAWN), 2);
        set_threads(1);
        assert_eq!(workers_for(1 << 20, 64), 1);
        set_threads(4);
    }

    #[test]
    fn for_blocks_covers_every_element_once() {
        let _guard = config_lock();
        set_threads(4);
        let mut data = vec![0u32; 10_000];
        for_blocks(&mut data, WORK_PER_SPAWN, |offset, block| {
            for (i, v) in block.iter_mut().enumerate() {
                *v += (offset + i) as u32;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn permits_bound_concurrency() {
        let _guard = config_lock();
        set_threads(2);
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let peak = Arc::clone(&peak);
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    let _permit = compute_permit();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {peak:?}");
        set_threads(4);
    }
}
