//! # clinfl-tensor
//!
//! A pure-Rust, CPU-only `f32` tensor library with tape-based reverse-mode
//! automatic differentiation, built as the training substrate for the
//! `clinfl` reproduction of *"Multi-Site Clinical Federated Learning using
//! Recursive and Attentive Models and NVFlare"* (ICDCS 2023).
//!
//! The paper trains LSTM and BERT models with PyTorch on GPUs; this crate
//! replaces that stack with an equivalent set of mathematical operations so
//! the whole system is self-contained:
//!
//! * [`Tensor`] — dense row-major n-dimensional `f32` array.
//! * [`Graph`] / [`Var`] — a computation tape recording forward operations
//!   and replaying them in reverse for gradients (backpropagation, including
//!   backpropagation-through-time for the LSTM).
//! * [`Params`] — a named parameter store shared between models, optimizers
//!   and the federated-learning weight exchange.
//! * [`Adam`] / [`Sgd`] — optimizers (the paper uses Adam, lr = 1e-2).
//! * [`gradcheck`] — finite-difference gradient checking used heavily by the
//!   test-suite.
//!
//! ## Example
//!
//! ```
//! use clinfl_tensor::{Graph, Params, Tensor, Adam, Optimizer};
//!
//! // y = relu(x W + b), loss = mean((y - t)^2)
//! let mut params = Params::new();
//! let w = params.register("w", Tensor::randn(&[4, 2], 0.5, 42));
//! let b = params.register("b", Tensor::zeros(&[2]));
//!
//! let mut adam = Adam::with_lr(1e-2);
//! let mut g = Graph::new();
//! for _ in 0..10 {
//!     g.reset(); // clear the tape, recycling last step's buffers
//!     let x = g.input(Tensor::ones(&[3, 4]));
//!     let t = g.input(Tensor::zeros(&[3, 2]));
//!     let wv = g.param(&params, w);
//!     let bv = g.param(&params, b);
//!     let h = g.matmul(x, wv);
//!     let h = g.add(h, bv);
//!     let y = g.relu(h);
//!     let d = g.sub(y, t);
//!     let sq = g.mul(d, d);
//!     let loss = g.mean(sq);
//!     g.backward(loss);
//!     g.grads_into(&mut params);
//!     adam.step(&mut params);
//! }
//! assert!(params.value(w).data().iter().all(|v| v.is_finite()));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod arena;
mod error;
mod gradcheck_impl;
mod graph;
mod init;
pub mod kernels;
mod ops;
mod optim;
pub mod pool;
mod shape;
mod tensor;

pub use error::TensorError;
pub use gradcheck_impl::{gradcheck, GradCheckReport};
pub use graph::{Graph, Var};
pub use init::Init;
pub use optim::{Adam, AdamConfig, GradClip, LrSchedule, Optimizer, ParamId, Params, Sgd};
pub use shape::{Shape, MAX_RANK};
pub use tensor::Tensor;
