//! Error type for fallible tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible `clinfl-tensor` operations (serialization,
/// validated constructors).
///
/// Most shape errors in this crate are programming errors and panic with a
/// descriptive message instead (documented per-method under "Panics"),
/// mirroring the behaviour of mainstream tensor libraries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A shape was inconsistent with the provided data length.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A serialized tensor payload was malformed.
    MalformedPayload(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but {actual} were provided"
            ),
            TensorError::MalformedPayload(msg) => write!(f, "malformed tensor payload: {msg}"),
        }
    }
}

impl Error for TensorError {}
