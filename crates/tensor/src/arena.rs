//! Cross-step buffer recycling for the autograd tape.
//!
//! Every training step records a tape of operations, and every node on that
//! tape owns heap buffers: the forward value, gradient tensors, dropout
//! masks, saved softmax probabilities, and so on. Building a fresh
//! [`crate::Graph`] per step turns all of that into allocator churn.
//!
//! [`BufferPool`] is the arena that breaks the cycle: when a graph is
//! [`reset`](crate::Graph::reset), every buffer on the tape is returned
//! here instead of being freed, bucketed by capacity. The next step's ops
//! then *take* buffers back out — a `BTreeMap` smallest-fit lookup — so in
//! steady state a training loop performs almost no heap allocation at all.
//!
//! Buffers come back with unspecified contents. Callers choose between
//! [`BufferPool::take_f32`] (contents unspecified — for outputs every
//! element of which is overwritten) and [`BufferPool::take_f32_zeroed`]
//! (for accumulation targets). Getting that distinction right per op is
//! what keeps reuse bit-identical to fresh allocation; see the audit notes
//! on each backward rule in `ops.rs` and the tape-memory-model section of
//! `DESIGN.md`.

use crate::shape::Shape;
use crate::tensor::Tensor;
use std::collections::BTreeMap;

/// Pops the smallest buffer with capacity at least `n` from a bucketed
/// free-list map, removing emptied buckets.
fn take_bucket<T>(map: &mut BTreeMap<usize, Vec<Vec<T>>>, n: usize) -> Option<Vec<T>> {
    let (&cap, bucket) = map.range_mut(n..).next()?;
    let v = bucket.pop().expect("pool buckets are never empty");
    if bucket.is_empty() {
        map.remove(&cap);
    }
    Some(v)
}

/// Returns a buffer to a bucketed free-list map, keyed by its capacity.
fn give_bucket<T>(map: &mut BTreeMap<usize, Vec<Vec<T>>>, v: Vec<T>) {
    if v.capacity() > 0 {
        map.entry(v.capacity()).or_default().push(v);
    }
}

/// Capacity-bucketed free lists of heap buffers, recycled across training
/// steps by [`crate::Graph::reset`].
///
/// Holds separate free lists for the three element types the tape stores:
/// `f32` (tensor values, gradients, dropout masks, softmax probabilities,
/// layer-norm statistics), `u32` (embedding ids) and `i32` (cross-entropy
/// targets).
#[derive(Debug, Default)]
pub(crate) struct BufferPool {
    f32s: BTreeMap<usize, Vec<Vec<f32>>>,
    u32s: BTreeMap<usize, Vec<Vec<u32>>>,
    i32s: BTreeMap<usize, Vec<Vec<i32>>>,
    hits: u64,
    misses: u64,
    /// Bytes currently parked in the free lists.
    held_bytes: u64,
    /// High-water mark of `held_bytes` over the pool's lifetime.
    peak_bytes: u64,
    /// Hit/miss values already pushed to the global obs registry, so
    /// [`BufferPool::publish_obs`] adds only the delta since last call.
    published: (u64, u64),
}

impl BufferPool {
    /// A length-`n` `f32` buffer with unspecified contents. Only use when
    /// every element will be written before being read.
    pub(crate) fn take_f32(&mut self, n: usize) -> Vec<f32> {
        if n == 0 {
            return Vec::new();
        }
        match take_bucket(&mut self.f32s, n) {
            Some(mut v) => {
                self.hits += 1;
                self.held_bytes -= (v.capacity() * std::mem::size_of::<f32>()) as u64;
                v.resize(n, 0.0);
                v
            }
            None => {
                self.misses += 1;
                vec![0.0; n]
            }
        }
    }

    /// A length-`n` `f32` buffer with every element zero.
    pub(crate) fn take_f32_zeroed(&mut self, n: usize) -> Vec<f32> {
        if n == 0 {
            return Vec::new();
        }
        match take_bucket(&mut self.f32s, n) {
            Some(mut v) => {
                self.hits += 1;
                self.held_bytes -= (v.capacity() * std::mem::size_of::<f32>()) as u64;
                v.clear();
                v.resize(n, 0.0);
                v
            }
            None => {
                self.misses += 1;
                vec![0.0; n]
            }
        }
    }

    /// Returns an `f32` buffer to the pool.
    pub(crate) fn give_f32(&mut self, v: Vec<f32>) {
        self.track_give(v.capacity() * std::mem::size_of::<f32>());
        give_bucket(&mut self.f32s, v);
    }

    /// A length-`n` `u32` buffer with unspecified contents.
    pub(crate) fn take_u32(&mut self, n: usize) -> Vec<u32> {
        if n == 0 {
            return Vec::new();
        }
        match take_bucket(&mut self.u32s, n) {
            Some(mut v) => {
                self.hits += 1;
                self.held_bytes -= (v.capacity() * std::mem::size_of::<u32>()) as u64;
                v.resize(n, 0);
                v
            }
            None => {
                self.misses += 1;
                vec![0; n]
            }
        }
    }

    /// Returns a `u32` buffer to the pool.
    pub(crate) fn give_u32(&mut self, v: Vec<u32>) {
        self.track_give(v.capacity() * std::mem::size_of::<u32>());
        give_bucket(&mut self.u32s, v);
    }

    /// A length-`n` `i32` buffer with unspecified contents.
    pub(crate) fn take_i32(&mut self, n: usize) -> Vec<i32> {
        if n == 0 {
            return Vec::new();
        }
        match take_bucket(&mut self.i32s, n) {
            Some(mut v) => {
                self.hits += 1;
                self.held_bytes -= (v.capacity() * std::mem::size_of::<i32>()) as u64;
                v.resize(n, 0);
                v
            }
            None => {
                self.misses += 1;
                vec![0; n]
            }
        }
    }

    /// Returns an `i32` buffer to the pool.
    pub(crate) fn give_i32(&mut self, v: Vec<i32>) {
        self.track_give(v.capacity() * std::mem::size_of::<i32>());
        give_bucket(&mut self.i32s, v);
    }

    // ------------------------------------------------------------------
    // Tensor-level helpers
    // ------------------------------------------------------------------

    /// A tensor of `shape` with unspecified contents. Only use when every
    /// element will be written before being read.
    pub(crate) fn tensor_uninit(&mut self, shape: Shape) -> Tensor {
        let data = self.take_f32(shape.numel());
        Tensor::from_raw(shape, data)
    }

    /// An all-zeros tensor of `shape`.
    pub(crate) fn tensor_zeroed(&mut self, shape: Shape) -> Tensor {
        let data = self.take_f32_zeroed(shape.numel());
        Tensor::from_raw(shape, data)
    }

    /// A tensor of `shape` filled with `v`.
    pub(crate) fn tensor_full(&mut self, shape: Shape, v: f32) -> Tensor {
        let mut t = self.tensor_uninit(shape);
        t.data_mut().fill(v);
        t
    }

    /// An element-wise copy of `src`.
    pub(crate) fn tensor_copy(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.tensor_uninit(*src.shape());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    /// Returns a tensor's backing buffer to the pool.
    pub(crate) fn recycle(&mut self, t: Tensor) {
        self.give_f32(t.into_data());
    }

    /// Buffer requests served from the free lists.
    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    /// Buffer requests that fell through to the system allocator.
    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    /// High-water mark of bytes parked in the free lists.
    pub(crate) fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    fn track_give(&mut self, bytes: usize) {
        self.held_bytes += bytes as u64;
        self.peak_bytes = self.peak_bytes.max(self.held_bytes);
    }

    /// Pushes the hit/miss deltas since the last call to the global obs
    /// counters `tensor.arena.hits` / `tensor.arena.misses` and raises
    /// the `tensor.arena.peak_pool_bytes` gauge. Called by
    /// [`crate::Graph::reset`] so steady-state training publishes once
    /// per step, not once per buffer.
    pub(crate) fn publish_obs(&mut self) {
        if !clinfl_obs::enabled() {
            return;
        }
        let (hits, misses) = (self.hits, self.misses);
        if hits > self.published.0 {
            clinfl_obs::counter("tensor.arena.hits").add(hits - self.published.0);
        }
        if misses > self.published.1 {
            clinfl_obs::counter("tensor.arena.misses").add(misses - self.published.1);
        }
        self.published = (hits, misses);
        clinfl_obs::gauge("tensor.arena.peak_pool_bytes").set_max(self.peak_bytes as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffers_are_reused() {
        let mut pool = BufferPool::default();
        let a = pool.take_f32(16);
        assert_eq!(pool.misses(), 1);
        pool.give_f32(a);
        let b = pool.take_f32(10);
        assert_eq!(pool.hits(), 1);
        assert_eq!(b.len(), 10);
        assert!(b.capacity() >= 16);
    }

    #[test]
    fn zeroed_take_clears_stale_contents() {
        let mut pool = BufferPool::default();
        pool.give_f32(vec![7.0; 8]);
        let z = pool.take_f32_zeroed(8);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn smallest_fit_picks_tightest_bucket() {
        let mut pool = BufferPool::default();
        pool.give_f32(Vec::with_capacity(100));
        pool.give_f32(Vec::with_capacity(8));
        let v = pool.take_f32(5);
        assert!(v.capacity() < 100, "should pick the 8-capacity buffer");
    }

    #[test]
    fn tensor_helpers_shapes_and_values() {
        let mut pool = BufferPool::default();
        let z = pool.tensor_zeroed(Shape::new(&[2, 3]));
        assert_eq!(z.dims(), &[2, 3]);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = pool.tensor_full(Shape::new(&[2]), 4.5);
        assert_eq!(f.data(), &[4.5, 4.5]);
        let c = pool.tensor_copy(&f);
        assert_eq!(c.data(), &[4.5, 4.5]);
        pool.recycle(z);
        pool.recycle(f);
        pool.recycle(c);
        assert!(pool.hits() + pool.misses() >= 3);
    }

    #[test]
    fn zero_length_requests_do_not_touch_buckets() {
        let mut pool = BufferPool::default();
        pool.give_f32(vec![1.0; 4]);
        let v = pool.take_f32(0);
        assert!(v.is_empty());
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.misses(), 0);
    }

    #[test]
    fn typed_buffers_round_trip() {
        let mut pool = BufferPool::default();
        pool.give_u32(vec![9; 6]);
        let u = pool.take_u32(4);
        assert_eq!(u.len(), 4);
        assert_eq!(pool.hits(), 1);
        pool.give_i32(vec![-3; 5]);
        let i = pool.take_i32(5);
        assert_eq!(i.len(), 5);
        assert_eq!(pool.hits(), 2);
    }
}
