//! Operation records for the autograd tape and their backward rules.

use crate::kernels;
use crate::tensor::Tensor;

/// How the right-hand operand of an element-wise op is broadcast onto the
/// left-hand operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Broadcast {
    /// Identical shapes.
    None,
    /// RHS is a vector matching the last dimension of LHS (bias add).
    Row,
    /// RHS is a single element.
    Scalar,
}

/// A recorded operation. Each variant stores whatever forward-pass state its
/// backward rule needs (e.g. dropout masks, layer-norm reciprocal stddevs).
#[derive(Debug)]
pub(crate) enum Op {
    /// Graph input or parameter copy; no backward.
    Leaf,
    /// `a + b` with RHS broadcast.
    Add(Broadcast),
    /// `a - b` with RHS broadcast.
    Sub(Broadcast),
    /// `a * b` (element-wise) with RHS broadcast.
    Mul(Broadcast),
    /// `-a`.
    Neg,
    /// `a * c` for a constant `c`.
    Scale(f32),
    /// `a + c` for a constant `c`.
    AddScalar,
    /// Batched matrix product; `rhs_broadcast` is true when the RHS was a
    /// rank-2 matrix shared across the batch.
    Matmul {
        /// RHS was rank-2 and shared across the whole batch.
        rhs_broadcast: bool,
    },
    /// Swap of the last two dimensions.
    TransposeLast2,
    /// Swap of axes 1 and 2 of a rank-4 tensor (attention head split).
    SwapAxes12,
    /// Shape change over the same data.
    Reshape,
    /// Concatenation of two tensors along the last dimension.
    ConcatLast,
    /// Contiguous slice along the last dimension.
    SliceLast {
        /// First kept column.
        start: usize,
        /// Extent of the input's last dimension.
        src_width: usize,
    },
    /// Sum over the last dimension (`[.., D]` → `[..]`).
    SumLast,
    /// Mean over axis 1 of a rank-3 tensor (`[B, S, H]` → `[B, H]`),
    /// i.e. mean pooling over sequence positions.
    MeanAxis1 {
        /// Extent of axis 1 in the input.
        axis_len: usize,
    },
    /// Sum of all elements to a scalar.
    Sum,
    /// Mean of all elements to a scalar.
    Mean,
    /// Selection of one index along axis 1 of a rank-3 tensor
    /// (`[B, S, H] -> [B, H]`), used for `[CLS]` pooling.
    Select {
        /// Selected index along axis 1.
        index: usize,
        /// Extent of axis 1 in the input.
        axis_len: usize,
    },
    /// Softmax over the last dimension (output saved on the node).
    Softmax,
    /// Log-softmax over the last dimension (output saved on the node).
    LogSoftmax,
    /// Mean cross-entropy from logits `[N, C]` against integer targets.
    CrossEntropy {
        /// Per-row class targets; rows equal to `ignore_index` are skipped.
        targets: Vec<i32>,
        /// Target value marking rows excluded from the loss.
        ignore_index: i32,
        /// Number of rows that participated in the loss.
        n_valid: usize,
        /// Softmax probabilities saved from the forward pass.
        probs: Vec<f32>,
    },
    /// Embedding-table row gather; input 0 is the `[V, H]` table.
    Embedding {
        /// Row index per output position.
        ids: Vec<u32>,
    },
    /// Zero-mean/unit-variance normalization of the last dimension
    /// (non-affine part of layer norm).
    NormalizeLast {
        /// Per-row reciprocal standard deviations from the forward pass.
        rstd: Vec<f32>,
    },
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Inverted dropout; the mask already includes the `1/(1-p)` scale.
    Dropout {
        /// Multiplicative mask applied in the forward pass.
        mask: Vec<f32>,
    },
}

/// A node on the tape: the operation, its input node ids, and the computed
/// forward value.
#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) op: Op,
    pub(crate) inputs: Vec<usize>,
    pub(crate) value: Tensor,
}

/// Adds `contrib` into the gradient slot for node `id`.
pub(crate) fn accumulate(grads: &mut [Option<Tensor>], id: usize, contrib: Tensor) {
    match &mut grads[id] {
        Some(g) => g.axpy(1.0, &contrib),
        slot @ None => *slot = Some(contrib),
    }
}

/// Reduces a full-shape gradient back to the shape of a broadcast RHS.
fn reduce_for_broadcast(full: &Tensor, bcast: Broadcast, rhs_shape: &[usize]) -> Tensor {
    match bcast {
        Broadcast::None => full.clone(),
        Broadcast::Scalar => {
            let mut t = Tensor::zeros(rhs_shape);
            t.data_mut()[0] = full.sum();
            t
        }
        Broadcast::Row => {
            let width = full.shape().last_dim();
            let mut acc = vec![0.0f32; width];
            for row in full.data().chunks(width) {
                for (a, &v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
            }
            Tensor::from_vec(rhs_shape, acc).expect("row-broadcast grad shape")
        }
    }
}

/// Applies the backward rule of node `id`, accumulating into the gradients
/// of its inputs. `grads[id]` must already contain the upstream gradient.
pub(crate) fn backward_node(nodes: &[Node], grads: &mut [Option<Tensor>], id: usize) {
    let node = &nodes[id];
    let dy = match grads[id].take() {
        Some(g) => g,
        None => return,
    };
    let ins = &node.inputs;
    match &node.op {
        Op::Leaf => {
            // Restore: leaves keep their gradient for later retrieval.
            grads[id] = Some(dy);
        }
        Op::Add(bcast) => {
            let rhs_dims = nodes[ins[1]].value.dims().to_vec();
            accumulate(grads, ins[1], reduce_for_broadcast(&dy, *bcast, &rhs_dims));
            accumulate(grads, ins[0], dy);
        }
        Op::Sub(bcast) => {
            let rhs_dims = nodes[ins[1]].value.dims().to_vec();
            let neg = dy.scaled(-1.0);
            accumulate(grads, ins[1], reduce_for_broadcast(&neg, *bcast, &rhs_dims));
            accumulate(grads, ins[0], dy);
        }
        Op::Mul(bcast) => {
            let a = &nodes[ins[0]].value;
            let b = &nodes[ins[1]].value;
            // da = dy * b (with b broadcast), db = reduce(dy * a)
            let da = match bcast {
                Broadcast::None => {
                    let mut t = dy.clone();
                    for (x, &bv) in t.data_mut().iter_mut().zip(b.data()) {
                        *x *= bv;
                    }
                    t
                }
                Broadcast::Scalar => dy.scaled(b.data()[0]),
                Broadcast::Row => {
                    let width = a.shape().last_dim();
                    let mut t = dy.clone();
                    for row in t.data_mut().chunks_mut(width) {
                        for (x, &bv) in row.iter_mut().zip(b.data()) {
                            *x *= bv;
                        }
                    }
                    t
                }
            };
            let mut dyxa = dy.clone();
            for (x, &av) in dyxa.data_mut().iter_mut().zip(a.data()) {
                *x *= av;
            }
            let rhs_dims = b.dims().to_vec();
            accumulate(
                grads,
                ins[1],
                reduce_for_broadcast(&dyxa, *bcast, &rhs_dims),
            );
            accumulate(grads, ins[0], da);
        }
        Op::Neg => accumulate(grads, ins[0], dy.scaled(-1.0)),
        Op::Scale(c) => accumulate(grads, ins[0], dy.scaled(*c)),
        Op::AddScalar => accumulate(grads, ins[0], dy),
        Op::Matmul { rhs_broadcast } => {
            let a = &nodes[ins[0]].value;
            let b = &nodes[ins[1]].value;
            let (batch, m, k) = a.shape().as_batched_matrix();
            let n = b.shape().last_dim();
            // da[b] = dy[b] . b[b]^T ; db[b] = a[b]^T . dy[b].
            // The dy·b^T product is computed as a plain `ikj` matmul against
            // an explicitly transposed RHS: the transpose is O(k·n) while
            // the dot-product formulation of `a·b^T` vectorizes far worse
            // than the streaming kernel.
            let bt = b.transposed_last2(); // [.., n, k]
            let mut da = Tensor::zeros(a.dims());
            let mut db = Tensor::zeros(b.dims());
            for bi in 0..batch {
                let dyb = &dy.data()[bi * m * n..(bi + 1) * m * n];
                let ab = &a.data()[bi * m * k..(bi + 1) * m * k];
                let btb = if *rhs_broadcast {
                    bt.data()
                } else {
                    &bt.data()[bi * k * n..(bi + 1) * k * n]
                };
                kernels::matmul_acc(
                    dyb,
                    btb,
                    &mut da.data_mut()[bi * m * k..(bi + 1) * m * k],
                    m,
                    n,
                    k,
                );
                let db_slice = if *rhs_broadcast {
                    &mut db.data_mut()[..]
                } else {
                    &mut db.data_mut()[bi * k * n..(bi + 1) * k * n]
                };
                kernels::matmul_at_b_acc(ab, dyb, db_slice, k, m, n);
            }
            accumulate(grads, ins[0], da);
            accumulate(grads, ins[1], db);
        }
        Op::TransposeLast2 => accumulate(grads, ins[0], dy.transposed_last2()),
        Op::SwapAxes12 => accumulate(grads, ins[0], dy.swapped_axes12()),
        Op::Reshape => {
            let in_dims = nodes[ins[0]].value.dims().to_vec();
            accumulate(grads, ins[0], dy.reshaped(&in_dims));
        }
        Op::ConcatLast => {
            let a = &nodes[ins[0]].value;
            let b = &nodes[ins[1]].value;
            let wa = a.shape().last_dim();
            let wb = b.shape().last_dim();
            let mut da = Tensor::zeros(a.dims());
            let mut db = Tensor::zeros(b.dims());
            for (row, (dra, drb)) in dy.data().chunks(wa + wb).zip(
                da.data_mut()
                    .chunks_mut(wa)
                    .zip(db.data_mut().chunks_mut(wb)),
            ) {
                dra.copy_from_slice(&row[..wa]);
                drb.copy_from_slice(&row[wa..]);
            }
            accumulate(grads, ins[0], da);
            accumulate(grads, ins[1], db);
        }
        Op::SliceLast { start, src_width } => {
            let src = &nodes[ins[0]].value;
            let width = dy.shape().last_dim();
            let mut dx = Tensor::zeros(src.dims());
            for (drow, dyrow) in dx
                .data_mut()
                .chunks_mut(*src_width)
                .zip(dy.data().chunks(width))
            {
                drow[*start..*start + width].copy_from_slice(dyrow);
            }
            accumulate(grads, ins[0], dx);
        }
        Op::SumLast => {
            let src = &nodes[ins[0]].value;
            let width = src.shape().last_dim();
            let mut dx = Tensor::zeros(src.dims());
            for (drow, &g) in dx.data_mut().chunks_mut(width).zip(dy.data()) {
                drow.fill(g);
            }
            accumulate(grads, ins[0], dx);
        }
        Op::MeanAxis1 { axis_len } => {
            let src = &nodes[ins[0]].value;
            let dims = src.dims();
            let (b, s, h) = (dims[0], dims[1], dims[2]);
            debug_assert_eq!(s, *axis_len);
            let scale = 1.0 / s as f32;
            let mut dx = Tensor::zeros(dims);
            for bi in 0..b {
                let g = &dy.data()[bi * h..(bi + 1) * h];
                for si in 0..s {
                    let drow = &mut dx.data_mut()[(bi * s + si) * h..(bi * s + si + 1) * h];
                    for (d, &gv) in drow.iter_mut().zip(g) {
                        *d = gv * scale;
                    }
                }
            }
            accumulate(grads, ins[0], dx);
        }
        Op::Sum => {
            let g = dy.item();
            let in_dims = nodes[ins[0]].value.dims().to_vec();
            accumulate(grads, ins[0], Tensor::full(&in_dims, g));
        }
        Op::Mean => {
            let src = &nodes[ins[0]].value;
            let g = dy.item() / src.numel() as f32;
            accumulate(grads, ins[0], Tensor::full(src.dims(), g));
        }
        Op::Select { index, axis_len } => {
            let src = &nodes[ins[0]].value;
            let dims = src.dims();
            let (b, s, h) = (dims[0], dims[1], dims[2]);
            debug_assert_eq!(s, *axis_len);
            let mut dx = Tensor::zeros(dims);
            for bi in 0..b {
                let dst = &mut dx.data_mut()[(bi * s + index) * h..(bi * s + index + 1) * h];
                dst.copy_from_slice(&dy.data()[bi * h..(bi + 1) * h]);
            }
            accumulate(grads, ins[0], dx);
        }
        Op::Softmax => {
            // dx = y * (dy - sum(dy * y)) per row, y = saved output.
            let y = &node.value;
            let width = y.shape().last_dim();
            let mut dx = Tensor::zeros(y.dims());
            kernels::softmax_rows_backward(y.data(), dy.data(), dx.data_mut(), width);
            accumulate(grads, ins[0], dx);
        }
        Op::LogSoftmax => {
            // dx = dy - softmax(x) * sum(dy) per row; softmax = exp(saved y).
            let y = &node.value;
            let width = y.shape().last_dim();
            let mut dx = Tensor::zeros(y.dims());
            kernels::log_softmax_rows_backward(y.data(), dy.data(), dx.data_mut(), width);
            accumulate(grads, ins[0], dx);
        }
        Op::CrossEntropy {
            targets,
            ignore_index,
            n_valid,
            probs,
        } => {
            let logits = &nodes[ins[0]].value;
            let classes = logits.shape().last_dim();
            let scale = dy.item() / (*n_valid).max(1) as f32;
            let mut dx = Tensor::zeros(logits.dims());
            for (row, &t) in targets.iter().enumerate() {
                if t == *ignore_index {
                    continue;
                }
                let p = &probs[row * classes..(row + 1) * classes];
                let d = &mut dx.data_mut()[row * classes..(row + 1) * classes];
                for (j, (dv, &pv)) in d.iter_mut().zip(p).enumerate() {
                    let y = if j as i32 == t { 1.0 } else { 0.0 };
                    *dv = (pv - y) * scale;
                }
            }
            accumulate(grads, ins[0], dx);
        }
        Op::Embedding { ids } => {
            let table = &nodes[ins[0]].value;
            let h = table.shape().last_dim();
            let mut dt = Tensor::zeros(table.dims());
            for (pos, &id) in ids.iter().enumerate() {
                let dst = &mut dt.data_mut()[id as usize * h..(id as usize + 1) * h];
                let src = &dy.data()[pos * h..(pos + 1) * h];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
            accumulate(grads, ins[0], dt);
        }
        Op::NormalizeLast { rstd } => {
            let y = &node.value;
            let width = y.shape().last_dim();
            let mut dx = Tensor::zeros(y.dims());
            kernels::layer_norm_rows_backward(y.data(), rstd, dy.data(), dx.data_mut(), width);
            accumulate(grads, ins[0], dx);
        }
        Op::Tanh => {
            // Differentiates the tanh_fast approximant (from the saved
            // input), keeping analytic and numeric gradients consistent.
            let x = &nodes[ins[0]].value;
            let mut dx = dy;
            kernels::mul_map_inplace(x.data(), dx.data_mut(), 16, kernels::tanh_fast_grad);
            accumulate(grads, ins[0], dx);
        }
        Op::Sigmoid => {
            // sigmoid(x) = (1 + tanh_fast(x/2)) / 2 → s'(x) = P'(x/2) / 4.
            let x = &nodes[ins[0]].value;
            let mut dx = dy;
            kernels::mul_map_inplace(x.data(), dx.data_mut(), 16, |xv| {
                0.25 * kernels::tanh_fast_grad(0.5 * xv)
            });
            accumulate(grads, ins[0], dx);
        }
        Op::Relu => {
            let x = &nodes[ins[0]].value;
            let mut dx = dy;
            let xs = x.data();
            crate::pool::for_blocks(dx.data_mut(), 2, |offset, block| {
                let len = block.len();
                for (d, &xv) in block.iter_mut().zip(&xs[offset..offset + len]) {
                    if xv <= 0.0 {
                        *d = 0.0;
                    }
                }
            });
            accumulate(grads, ins[0], dx);
        }
        Op::Gelu => {
            let x = &nodes[ins[0]].value;
            let mut dx = dy;
            kernels::mul_map_inplace(x.data(), dx.data_mut(), 32, kernels::gelu_grad);
            accumulate(grads, ins[0], dx);
        }
        Op::Dropout { mask } => {
            let mut dx = dy;
            crate::pool::for_blocks(dx.data_mut(), 2, |offset, block| {
                let len = block.len();
                for (d, &m) in block.iter_mut().zip(&mask[offset..offset + len]) {
                    *d *= m;
                }
            });
            accumulate(grads, ins[0], dx);
        }
    }
}
