//! Operation records for the autograd tape and their backward rules.
//!
//! Backward rules draw every gradient buffer from the graph's
//! [`BufferPool`] and return consumed upstream gradients to it, so a
//! reused graph reaches an allocation-free steady state. Each rule is
//! annotated with whether its output buffer must be zeroed (accumulation /
//! partial writes) or may start with unspecified contents (every element
//! overwritten) — the distinction that keeps recycled buffers bit-identical
//! to fresh ones.

use crate::arena::BufferPool;
use crate::kernels;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// How the right-hand operand of an element-wise op is broadcast onto the
/// left-hand operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Broadcast {
    /// Identical shapes.
    None,
    /// RHS is a vector matching the last dimension of LHS (bias add).
    Row,
    /// RHS is a single element.
    Scalar,
}

/// A recorded operation. Each variant stores whatever forward-pass state its
/// backward rule needs (e.g. dropout masks, layer-norm reciprocal stddevs).
#[derive(Debug)]
pub(crate) enum Op {
    /// Graph input or parameter copy; no backward.
    Leaf,
    /// `a + b` with RHS broadcast.
    Add(Broadcast),
    /// `a - b` with RHS broadcast.
    Sub(Broadcast),
    /// `a * b` (element-wise) with RHS broadcast.
    Mul(Broadcast),
    /// `-a`.
    Neg,
    /// `a * c` for a constant `c`.
    Scale(f32),
    /// `a + c` for a constant `c`.
    AddScalar,
    /// Batched matrix product; `rhs_broadcast` is true when the RHS was a
    /// rank-2 matrix shared across the batch.
    Matmul {
        /// RHS was rank-2 and shared across the whole batch.
        rhs_broadcast: bool,
    },
    /// Batched matrix product with the RHS transposed in place
    /// (`a · bᵀ`), computed directly by the packed `a·bᵀ` kernel —
    /// attention scores (`q·kᵀ`) and the tied MLM decoder (`h·Eᵀ`)
    /// without materializing a transposed operand.
    MatmulABt {
        /// RHS was rank-2 and shared across the whole batch.
        rhs_broadcast: bool,
    },
    /// Swap of the last two dimensions.
    TransposeLast2,
    /// Swap of axes 1 and 2 of a rank-4 tensor (attention head split).
    SwapAxes12,
    /// Shape change over the same data.
    Reshape,
    /// Concatenation of two tensors along the last dimension.
    ConcatLast,
    /// Contiguous slice along the last dimension.
    SliceLast {
        /// First kept column.
        start: usize,
        /// Extent of the input's last dimension.
        src_width: usize,
    },
    /// Sum over the last dimension (`[.., D]` → `[..]`).
    SumLast,
    /// Mean over axis 1 of a rank-3 tensor (`[B, S, H]` → `[B, H]`),
    /// i.e. mean pooling over sequence positions.
    MeanAxis1 {
        /// Extent of axis 1 in the input.
        axis_len: usize,
    },
    /// Sum of all elements to a scalar.
    Sum,
    /// Mean of all elements to a scalar.
    Mean,
    /// Selection of one index along axis 1 of a rank-3 tensor
    /// (`[B, S, H] -> [B, H]`), used for `[CLS]` pooling.
    Select {
        /// Selected index along axis 1.
        index: usize,
        /// Extent of axis 1 in the input.
        axis_len: usize,
    },
    /// Softmax over the last dimension (output saved as the node value).
    Softmax,
    /// Log-softmax over the last dimension (output saved as the node
    /// value).
    LogSoftmax,
    /// Mean cross-entropy from logits `[N, C]` against integer targets.
    CrossEntropy {
        /// Per-row class targets; rows equal to `ignore_index` are skipped.
        targets: Vec<i32>,
        /// Target value marking rows excluded from the loss.
        ignore_index: i32,
        /// Number of rows that participated in the loss.
        n_valid: usize,
        /// Softmax probabilities saved from the forward pass.
        probs: Vec<f32>,
    },
    /// Embedding-table row gather; input 0 is the `[V, H]` table.
    Embedding {
        /// Row index per output position.
        ids: Vec<u32>,
    },
    /// Zero-mean/unit-variance normalization of the last dimension
    /// (non-affine part of layer norm).
    NormalizeLast {
        /// Per-row reciprocal standard deviations from the forward pass.
        rstd: Vec<f32>,
    },
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Inverted dropout; the mask already includes the `1/(1-p)` scale.
    Dropout {
        /// Multiplicative mask applied in the forward pass.
        mask: Vec<f32>,
    },
}

/// A node on the tape: the operation and its input node ids. Forward
/// values live in the graph's parallel `values` array so metadata and
/// value storage recycle independently across [`crate::Graph::reset`].
///
/// No op takes more than two inputs, so the ids are stored inline —
/// pushing a node never allocates.
#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) op: Op,
    ins: [usize; 2],
    n_ins: u8,
}

impl Node {
    /// Creates a node record for `op` over the given input node ids.
    pub(crate) fn new(op: Op, inputs: &[usize]) -> Self {
        debug_assert!(inputs.len() <= 2, "ops take at most two inputs");
        let mut ins = [0usize; 2];
        ins[..inputs.len()].copy_from_slice(inputs);
        Node {
            op,
            ins,
            n_ins: inputs.len() as u8,
        }
    }

    /// The input node ids.
    pub(crate) fn inputs(&self) -> &[usize] {
        &self.ins[..self.n_ins as usize]
    }
}

/// Adds `contrib` into the gradient slot for node `id`. When the slot is
/// already populated the contribution's buffer is recycled after the
/// accumulation.
pub(crate) fn accumulate(
    grads: &mut [Option<Tensor>],
    pool: &mut BufferPool,
    id: usize,
    contrib: Tensor,
) {
    match &mut grads[id] {
        Some(g) => {
            g.axpy(1.0, &contrib);
            pool.recycle(contrib);
        }
        slot @ None => *slot = Some(contrib),
    }
}

/// Reduces a full-shape gradient back to the shape of a broadcast RHS,
/// leaving `full` intact (the caller still needs it).
fn reduce_for_broadcast(
    pool: &mut BufferPool,
    full: &Tensor,
    bcast: Broadcast,
    rhs_shape: Shape,
) -> Tensor {
    match bcast {
        Broadcast::None => pool.tensor_copy(full),
        Broadcast::Scalar => {
            let mut t = pool.tensor_uninit(rhs_shape);
            t.data_mut()[0] = full.sum();
            t
        }
        Broadcast::Row => {
            let width = full.shape().last_dim();
            let mut t = pool.tensor_zeroed(rhs_shape);
            let acc = t.data_mut();
            for row in full.data().chunks(width) {
                for (a, &v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
            }
            t
        }
    }
}

/// Like [`reduce_for_broadcast`] but consumes `full`: with no broadcast it
/// is returned as-is, otherwise its buffer is recycled after the reduction.
fn reduce_for_broadcast_owned(
    pool: &mut BufferPool,
    full: Tensor,
    bcast: Broadcast,
    rhs_shape: Shape,
) -> Tensor {
    match bcast {
        Broadcast::None => full,
        Broadcast::Scalar | Broadcast::Row => {
            let reduced = reduce_for_broadcast(pool, &full, bcast, rhs_shape);
            pool.recycle(full);
            reduced
        }
    }
}

/// Applies the backward rule of node `id`, accumulating into the gradients
/// of its inputs. `grads[id]` must already contain the upstream gradient;
/// it is consumed (and its buffer recycled or reused) except for leaves,
/// which keep theirs for later retrieval.
pub(crate) fn backward_node(
    nodes: &[Node],
    values: &[Tensor],
    grads: &mut [Option<Tensor>],
    pool: &mut BufferPool,
    id: usize,
) {
    let node = &nodes[id];
    let dy = match grads[id].take() {
        Some(g) => g,
        None => return,
    };
    let ins = node.inputs();
    match &node.op {
        Op::Leaf => {
            // Restore: leaves keep their gradient for later retrieval.
            grads[id] = Some(dy);
        }
        Op::Add(bcast) => {
            let rhs_shape = *values[ins[1]].shape();
            let db = reduce_for_broadcast(pool, &dy, *bcast, rhs_shape);
            accumulate(grads, pool, ins[1], db);
            accumulate(grads, pool, ins[0], dy);
        }
        Op::Sub(bcast) => {
            let rhs_shape = *values[ins[1]].shape();
            let mut neg = pool.tensor_copy(&dy);
            for v in neg.data_mut() {
                *v *= -1.0;
            }
            let db = reduce_for_broadcast_owned(pool, neg, *bcast, rhs_shape);
            accumulate(grads, pool, ins[1], db);
            accumulate(grads, pool, ins[0], dy);
        }
        Op::Mul(bcast) => {
            let a = &values[ins[0]];
            let b = &values[ins[1]];
            // da = dy * b (with b broadcast), db = reduce(dy * a)
            let mut da = pool.tensor_copy(&dy);
            match bcast {
                Broadcast::None => {
                    for (x, &bv) in da.data_mut().iter_mut().zip(b.data()) {
                        *x *= bv;
                    }
                }
                Broadcast::Scalar => {
                    let c = b.data()[0];
                    for x in da.data_mut() {
                        *x *= c;
                    }
                }
                Broadcast::Row => {
                    let width = a.shape().last_dim();
                    for row in da.data_mut().chunks_mut(width) {
                        for (x, &bv) in row.iter_mut().zip(b.data()) {
                            *x *= bv;
                        }
                    }
                }
            }
            let rhs_shape = *b.shape();
            // dyxa reuses the upstream gradient's buffer directly.
            let mut dyxa = dy;
            for (x, &av) in dyxa.data_mut().iter_mut().zip(a.data()) {
                *x *= av;
            }
            let db = reduce_for_broadcast_owned(pool, dyxa, *bcast, rhs_shape);
            accumulate(grads, pool, ins[1], db);
            accumulate(grads, pool, ins[0], da);
        }
        Op::Neg => {
            let mut dx = dy;
            for v in dx.data_mut() {
                *v *= -1.0;
            }
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Scale(c) => {
            let c = *c;
            let mut dx = dy;
            for v in dx.data_mut() {
                *v *= c;
            }
            accumulate(grads, pool, ins[0], dx);
        }
        Op::AddScalar => accumulate(grads, pool, ins[0], dy),
        Op::Matmul { rhs_broadcast } => {
            let a = &values[ins[0]];
            let b = &values[ins[1]];
            let (batch, m, k) = a.shape().as_batched_matrix();
            let n = b.shape().last_dim();
            // da[b] = dy[b] · b[b]ᵀ ; db[b] = a[b]ᵀ · dy[b]. Both go
            // through the packed batched kernels, whose packing strides
            // absorb the transposes — no transposed copy of `b` is built,
            // and a broadcast `db` collapses the per-batch accumulation
            // into one GEMM contracting over all batch·m rows.
            // Zeroed: the kernels accumulate into these.
            let mut da = pool.tensor_zeroed(*a.shape());
            let mut db = pool.tensor_zeroed(*b.shape());
            kernels::matmul_a_bt_batch_acc(
                dy.data(),
                b.data(),
                da.data_mut(),
                batch,
                m,
                n,
                k,
                *rhs_broadcast,
            );
            kernels::matmul_at_b_batch_acc(
                a.data(),
                dy.data(),
                db.data_mut(),
                batch,
                m,
                k,
                n,
                *rhs_broadcast,
            );
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], da);
            accumulate(grads, pool, ins[1], db);
        }
        Op::MatmulABt { rhs_broadcast } => {
            // y[b] = a[b] · b[b]ᵀ with a `[.., m, nc]`, b `[.., kr, nc]`,
            // dy `[.., m, kr]`:
            //   da[b] = dy[b] · b[b]          (plain matmul)
            //   db[b] = dy[b]ᵀ · a[b]         (lands directly in b's layout)
            // with db batch-accumulated when the RHS was broadcast.
            let a = &values[ins[0]];
            let b = &values[ins[1]];
            let (batch, m, nc) = a.shape().as_batched_matrix();
            let (_, kr, _) = b.shape().as_batched_matrix();
            let mut da = pool.tensor_zeroed(*a.shape());
            let mut db = pool.tensor_zeroed(*b.shape());
            kernels::matmul_batch_acc(
                dy.data(),
                b.data(),
                da.data_mut(),
                batch,
                m,
                kr,
                nc,
                *rhs_broadcast,
            );
            kernels::matmul_at_b_batch_acc(
                dy.data(),
                a.data(),
                db.data_mut(),
                batch,
                m,
                kr,
                nc,
                *rhs_broadcast,
            );
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], da);
            accumulate(grads, pool, ins[1], db);
        }
        Op::TransposeLast2 => {
            let mut dx = pool.tensor_uninit(dy.shape().transposed_last2());
            dy.transpose_last2_into(dx.data_mut());
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::SwapAxes12 => {
            let mut dx = pool.tensor_uninit(dy.shape().swapped_axes12());
            dy.swap_axes12_into(dx.data_mut());
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Reshape => {
            // Zero-copy: the gradient keeps its buffer under the input
            // shape (same element count by construction).
            let in_shape = *values[ins[0]].shape();
            let dx = Tensor::from_raw(in_shape, dy.into_data());
            accumulate(grads, pool, ins[0], dx);
        }
        Op::ConcatLast => {
            let a = &values[ins[0]];
            let b = &values[ins[1]];
            let wa = a.shape().last_dim();
            let wb = b.shape().last_dim();
            // Uninit: every row of both outputs is fully copied below.
            let mut da = pool.tensor_uninit(*a.shape());
            let mut db = pool.tensor_uninit(*b.shape());
            for (row, (dra, drb)) in dy.data().chunks(wa + wb).zip(
                da.data_mut()
                    .chunks_mut(wa)
                    .zip(db.data_mut().chunks_mut(wb)),
            ) {
                dra.copy_from_slice(&row[..wa]);
                drb.copy_from_slice(&row[wa..]);
            }
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], da);
            accumulate(grads, pool, ins[1], db);
        }
        Op::SliceLast { start, src_width } => {
            let src_shape = *values[ins[0]].shape();
            let width = dy.shape().last_dim();
            // Zeroed: only the sliced columns are written.
            let mut dx = pool.tensor_zeroed(src_shape);
            for (drow, dyrow) in dx
                .data_mut()
                .chunks_mut(*src_width)
                .zip(dy.data().chunks(width))
            {
                drow[*start..*start + width].copy_from_slice(dyrow);
            }
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::SumLast => {
            let src_shape = *values[ins[0]].shape();
            let width = src_shape.last_dim();
            // Uninit: every row is filled below.
            let mut dx = pool.tensor_uninit(src_shape);
            for (drow, &g) in dx.data_mut().chunks_mut(width).zip(dy.data()) {
                drow.fill(g);
            }
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::MeanAxis1 { axis_len } => {
            let src_shape = *values[ins[0]].shape();
            let dims = src_shape.dims();
            let (b, s, h) = (dims[0], dims[1], dims[2]);
            debug_assert_eq!(s, *axis_len);
            let scale = 1.0 / s as f32;
            // Uninit: every element is assigned below.
            let mut dx = pool.tensor_uninit(src_shape);
            for bi in 0..b {
                let g = &dy.data()[bi * h..(bi + 1) * h];
                for si in 0..s {
                    let drow = &mut dx.data_mut()[(bi * s + si) * h..(bi * s + si + 1) * h];
                    for (d, &gv) in drow.iter_mut().zip(g) {
                        *d = gv * scale;
                    }
                }
            }
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Sum => {
            let g = dy.item();
            pool.recycle(dy);
            let dx = pool.tensor_full(*values[ins[0]].shape(), g);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Mean => {
            let src_shape = *values[ins[0]].shape();
            let g = dy.item() / src_shape.numel() as f32;
            pool.recycle(dy);
            let dx = pool.tensor_full(src_shape, g);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Select { index, axis_len } => {
            let src_shape = *values[ins[0]].shape();
            let dims = src_shape.dims();
            let (b, s, h) = (dims[0], dims[1], dims[2]);
            debug_assert_eq!(s, *axis_len);
            // Zeroed: only the selected rows are written.
            let mut dx = pool.tensor_zeroed(src_shape);
            for bi in 0..b {
                let dst = &mut dx.data_mut()[(bi * s + index) * h..(bi * s + index + 1) * h];
                dst.copy_from_slice(&dy.data()[bi * h..(bi + 1) * h]);
            }
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Softmax => {
            // dx = y * (dy - sum(dy * y)) per row, y = saved output.
            let y = &values[id];
            let width = y.shape().last_dim();
            // Uninit: the kernel assigns every element.
            let mut dx = pool.tensor_uninit(*y.shape());
            kernels::softmax_rows_backward(y.data(), dy.data(), dx.data_mut(), width);
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::LogSoftmax => {
            // dx = dy - softmax(x) * sum(dy) per row; softmax = exp(saved y).
            let y = &values[id];
            let width = y.shape().last_dim();
            // Uninit: the kernel assigns every element.
            let mut dx = pool.tensor_uninit(*y.shape());
            kernels::log_softmax_rows_backward(y.data(), dy.data(), dx.data_mut(), width);
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::CrossEntropy {
            targets,
            ignore_index,
            n_valid,
            probs,
        } => {
            let logits_shape = *values[ins[0]].shape();
            let classes = logits_shape.last_dim();
            let scale = dy.item() / (*n_valid).max(1) as f32;
            pool.recycle(dy);
            // Zeroed: ignored rows must keep zero gradient.
            let mut dx = pool.tensor_zeroed(logits_shape);
            for (row, &t) in targets.iter().enumerate() {
                if t == *ignore_index {
                    continue;
                }
                let p = &probs[row * classes..(row + 1) * classes];
                let d = &mut dx.data_mut()[row * classes..(row + 1) * classes];
                for (j, (dv, &pv)) in d.iter_mut().zip(p).enumerate() {
                    let y = if j as i32 == t { 1.0 } else { 0.0 };
                    *dv = (pv - y) * scale;
                }
            }
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Embedding { ids } => {
            let table_shape = *values[ins[0]].shape();
            let h = table_shape.last_dim();
            // Zeroed: the scatter accumulates into gathered rows only.
            let mut dt = pool.tensor_zeroed(table_shape);
            for (pos, &id) in ids.iter().enumerate() {
                let dst = &mut dt.data_mut()[id as usize * h..(id as usize + 1) * h];
                let src = &dy.data()[pos * h..(pos + 1) * h];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], dt);
        }
        Op::NormalizeLast { rstd } => {
            let y = &values[id];
            let width = y.shape().last_dim();
            // Zeroed: the kernel accumulates (`+=`) into dx.
            let mut dx = pool.tensor_zeroed(*y.shape());
            kernels::layer_norm_rows_backward(y.data(), rstd, dy.data(), dx.data_mut(), width);
            pool.recycle(dy);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Tanh => {
            // Differentiates the tanh_fast approximant (from the saved
            // input), keeping analytic and numeric gradients consistent.
            let x = &values[ins[0]];
            let mut dx = dy;
            kernels::mul_map_inplace(x.data(), dx.data_mut(), 16, kernels::tanh_fast_grad);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Sigmoid => {
            // sigmoid(x) = (1 + tanh_fast(x/2)) / 2 → s'(x) = P'(x/2) / 4.
            let x = &values[ins[0]];
            let mut dx = dy;
            kernels::mul_map_inplace(x.data(), dx.data_mut(), 16, |xv| {
                0.25 * kernels::tanh_fast_grad(0.5 * xv)
            });
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Relu => {
            let x = &values[ins[0]];
            let mut dx = dy;
            let xs = x.data();
            crate::pool::for_blocks(dx.data_mut(), 2, |offset, block| {
                let len = block.len();
                for (d, &xv) in block.iter_mut().zip(&xs[offset..offset + len]) {
                    if xv <= 0.0 {
                        *d = 0.0;
                    }
                }
            });
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Gelu => {
            let x = &values[ins[0]];
            let mut dx = dy;
            kernels::mul_map_inplace(x.data(), dx.data_mut(), 32, kernels::gelu_grad);
            accumulate(grads, pool, ins[0], dx);
        }
        Op::Dropout { mask } => {
            let mut dx = dy;
            crate::pool::for_blocks(dx.data_mut(), 2, |offset, block| {
                let len = block.len();
                for (d, &m) in block.iter_mut().zip(&mask[offset..offset + len]) {
                    *d *= m;
                }
            });
            accumulate(grads, pool, ins[0], dx);
        }
    }
}
