//! Named parameter store and gradient-descent optimizers.

use crate::tensor::Tensor;
use std::collections::BTreeMap;

/// Opaque handle to a parameter inside a [`Params`] store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(usize);

#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct Entry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A named store of trainable parameters and their gradients.
///
/// `Params` is the single source of truth shared by model definitions,
/// optimizers, and the federated weight exchange: models register tensors by
/// name, training accumulates gradients via
/// [`crate::Graph::grads_into`], optimizers update values in place, and the
/// FL layer reads/writes the full set with [`Params::to_named`] /
/// [`Params::load_named`].
///
/// Iteration order (and therefore serialization order) is the registration
/// order, which is deterministic for a given model constructor.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Params {
    entries: Vec<Entry>,
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Params::default()
    }

    /// Registers a tensor under `name`, returning its handle. The gradient
    /// starts at zero.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "parameter {name:?} registered twice"
        );
        let grad = Tensor::zeros(value.dims());
        self.entries.push(Entry { name, value, grad });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalar elements).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar elements across all parameters.
    pub fn num_elements(&self) -> usize {
        self.entries.iter().map(|e| e.value.numel()).sum()
    }

    /// The value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable access to a parameter value.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutable access to the accumulated gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// The mutable value and the accumulated gradient of one parameter,
    /// borrowed together so optimizers can update in place without cloning
    /// either tensor.
    pub fn value_and_grad_mut(&mut self, id: ParamId) -> (&mut Tensor, &Tensor) {
        let e = &mut self.entries[id.0];
        (&mut e.value, &e.grad)
    }

    /// The name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Looks up a parameter by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(ParamId)
    }

    /// Iterates over `(id, name, value)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (ParamId(i), e.name.as_str(), &e.value))
    }

    /// Zeroes all gradients (call between optimizer steps).
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.zero_();
        }
    }

    /// Global L2 norm over all gradients.
    pub fn grad_l2_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Exports all values as a name → tensor map (the federated "model
    /// weights" payload).
    pub fn to_named(&self) -> BTreeMap<String, Tensor> {
        self.entries
            .iter()
            .map(|e| (e.name.clone(), e.value.clone()))
            .collect()
    }

    /// Loads values from a name → tensor map produced by [`Params::to_named`]
    /// on an identically-constructed model.
    ///
    /// Returns the number of parameters updated.
    ///
    /// # Panics
    ///
    /// Panics if a named tensor exists locally with a different shape
    /// (indicates a model-architecture mismatch between FL sites). Names
    /// present in the map but not registered locally are ignored, so a
    /// server checkpoint with extra heads can still initialize a backbone.
    pub fn load_named(&mut self, named: &BTreeMap<String, Tensor>) -> usize {
        self.copy_values_from(|name| named.get(name).map(|t| (t.dims(), t.data())))
    }

    /// Loads parameter values by copying from borrowed `(dims, data)` slices
    /// produced by `lookup`, reusing each parameter's existing buffer (no
    /// tensor allocation). Names `lookup` does not know are left untouched.
    ///
    /// Returns the number of parameters updated.
    ///
    /// # Panics
    ///
    /// Panics if a looked-up entry has a different shape than the local
    /// parameter (model-architecture mismatch between FL sites).
    pub fn copy_values_from<'a>(
        &mut self,
        mut lookup: impl FnMut(&str) -> Option<(&'a [usize], &'a [f32])>,
    ) -> usize {
        let mut updated = 0;
        for e in &mut self.entries {
            if let Some((dims, data)) = lookup(&e.name) {
                assert_eq!(
                    dims,
                    e.value.dims(),
                    "parameter {:?} shape mismatch on load",
                    e.name
                );
                e.value.data_mut().copy_from_slice(data);
                updated += 1;
            }
        }
        updated
    }

    /// Loads parameter values by taking ownership of tensors produced by
    /// `take`, replacing each parameter's buffer outright (the consuming
    /// counterpart of [`Params::copy_values_from`] for callers that already
    /// hold owned storage, e.g. deserialized wire payloads).
    ///
    /// Returns the number of parameters updated.
    ///
    /// # Panics
    ///
    /// Panics if a taken tensor has a different shape than the local
    /// parameter.
    pub fn replace_values(&mut self, mut take: impl FnMut(&str) -> Option<Tensor>) -> usize {
        let mut updated = 0;
        for e in &mut self.entries {
            if let Some(t) = take(&e.name) {
                assert_eq!(
                    t.dims(),
                    e.value.dims(),
                    "parameter {:?} shape mismatch on load",
                    e.name
                );
                e.value = t;
                updated += 1;
            }
        }
        updated
    }
}

/// Learning-rate schedule applied on top of an optimizer's base rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant,
    /// Linear ramp from 0 to the base rate over `warmup_steps`, then
    /// constant (the standard transformer warmup).
    LinearWarmup {
        /// Steps to reach the base rate.
        warmup_steps: u64,
    },
    /// Linear warmup followed by cosine decay to zero at `total_steps`.
    WarmupCosine {
        /// Steps to reach the base rate.
        warmup_steps: u64,
        /// Step at which the rate reaches zero.
        total_steps: u64,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (1-based) for a base rate `base`.
    pub fn lr_at(&self, base: f32, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::LinearWarmup { warmup_steps } => {
                if warmup_steps == 0 || step >= warmup_steps {
                    base
                } else {
                    base * step as f32 / warmup_steps as f32
                }
            }
            LrSchedule::WarmupCosine {
                warmup_steps,
                total_steps,
            } => {
                if step < warmup_steps && warmup_steps > 0 {
                    base * step as f32 / warmup_steps as f32
                } else if step >= total_steps {
                    0.0
                } else {
                    let span = (total_steps - warmup_steps).max(1) as f32;
                    let t = (step - warmup_steps) as f32 / span;
                    base * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
                }
            }
        }
    }
}

/// A gradient-descent optimizer over a [`Params`] store.
pub trait Optimizer {
    /// Applies one update from the accumulated gradients, then zeroes them.
    fn step(&mut self, params: &mut Params);
    /// The current learning rate.
    fn learning_rate(&self) -> f32;
    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Optional global-norm gradient clipping applied before an update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GradClip {
    /// Maximum allowed global L2 norm.
    pub max_norm: f32,
}

impl GradClip {
    /// Scales all gradients so their global L2 norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn apply(&self, params: &mut Params) -> f32 {
        let norm = params.grad_l2_norm();
        if norm > self.max_norm && norm > 0.0 {
            let scale = self.max_norm / norm;
            for i in 0..params.len() {
                let id = ParamId(i);
                for v in params.grad_mut(id).data_mut() {
                    *v *= scale;
                }
            }
        }
        norm
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// SGD with the given learning rate and no momentum.
    pub fn with_lr(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params) {
        if self.velocity.len() != params.len() {
            self.velocity = (0..params.len())
                .map(|i| Tensor::zeros(params.value(ParamId(i)).dims()))
                .collect();
        }
        for i in 0..params.len() {
            let id = ParamId(i);
            let (value, grad) = params.value_and_grad_mut(id);
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                for (vv, gv) in v.data_mut().iter_mut().zip(grad.data()) {
                    *vv = self.momentum * *vv + gv;
                }
                value.axpy(-self.lr, &self.velocity[i]);
            } else {
                value.axpy(-self.lr, grad);
            }
        }
        params.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Configuration for [`Adam`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdamConfig {
    /// Learning rate (the paper uses `1e-2`).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW-style); 0 disables.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// The Adam optimizer (Kingma & Ba), the optimizer used in the paper
/// (Table I: "Adam, 1e-2").
#[derive(Clone, Debug)]
pub struct Adam {
    cfg: AdamConfig,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the given config.
    pub fn new(cfg: AdamConfig) -> Self {
        Adam {
            cfg,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with default betas and the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        Adam::new(AdamConfig {
            lr,
            ..AdamConfig::default()
        })
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params) {
        if self.m.len() != params.len() {
            self.m = (0..params.len())
                .map(|i| Tensor::zeros(params.value(ParamId(i)).dims()))
                .collect();
            self.v = self.m.clone();
        }
        self.step_count += 1;
        let t = self.step_count as f32;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);
        for i in 0..params.len() {
            let id = ParamId(i);
            let (value, grad) = params.value_and_grad_mut(id);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mv, vv), &g) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(grad.data())
            {
                *mv = self.cfg.beta1 * *mv + (1.0 - self.cfg.beta1) * g;
                *vv = self.cfg.beta2 * *vv + (1.0 - self.cfg.beta2) * g * g;
            }
            let lr = self.cfg.lr;
            let eps = self.cfg.eps;
            let wd = self.cfg.weight_decay;
            for ((x, &mv), &vv) in value
                .data_mut()
                .iter_mut()
                .zip(self.m[i].data())
                .zip(self.v[i].data())
            {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                let mut upd = mhat / (vhat.sqrt() + eps);
                if wd > 0.0 {
                    upd += wd * *x;
                }
                *x -= lr * upd;
            }
        }
        params.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.cfg.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut p = Params::new();
        let a = p.register("a", Tensor::ones(&[2, 2]));
        let b = p.register("b", Tensor::zeros(&[3]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_elements(), 7);
        assert_eq!(p.name(a), "a");
        assert_eq!(p.id_of("b"), Some(b));
        assert_eq!(p.id_of("missing"), None);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut p = Params::new();
        p.register("a", Tensor::ones(&[1]));
        p.register("a", Tensor::ones(&[1]));
    }

    #[test]
    fn named_roundtrip() {
        let mut p = Params::new();
        let a = p.register("w", Tensor::randn(&[4], 1.0, 3));
        let map = p.to_named();
        let mut q = Params::new();
        let qa = q.register("w", Tensor::zeros(&[4]));
        assert_eq!(q.load_named(&map), 1);
        assert_eq!(q.value(qa), p.value(a));
    }

    #[test]
    fn load_named_ignores_unknown() {
        let mut p = Params::new();
        p.register("w", Tensor::zeros(&[2]));
        let mut map = p.to_named();
        map.insert("extra".into(), Tensor::ones(&[5]));
        assert_eq!(p.load_named(&map), 1);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn load_named_shape_mismatch_panics() {
        let mut p = Params::new();
        p.register("w", Tensor::zeros(&[2]));
        let mut map = BTreeMap::new();
        map.insert("w".to_string(), Tensor::zeros(&[3]));
        p.load_named(&map);
    }

    #[test]
    fn replace_values_moves_owned_tensors() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(&[2]));
        let mut incoming = BTreeMap::new();
        incoming.insert(
            "w".to_string(),
            Tensor::from_vec(&[2], vec![1.5, -2.5]).unwrap(),
        );
        incoming.insert("extra".to_string(), Tensor::ones(&[3]));
        assert_eq!(p.replace_values(|name| incoming.remove(name)), 1);
        assert_eq!(p.value(w).data(), &[1.5, -2.5]);
        // Unknown names are left in the source, known ones were consumed.
        assert!(incoming.contains_key("extra") && !incoming.contains_key("w"));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn replace_values_shape_mismatch_panics() {
        let mut p = Params::new();
        p.register("w", Tensor::zeros(&[2]));
        p.replace_values(|_| Some(Tensor::zeros(&[3])));
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap());
        p.grad_mut(w).data_mut().copy_from_slice(&[0.5, -0.5]);
        let mut opt = Sgd::with_lr(0.1);
        opt.step(&mut p);
        assert_eq!(p.value(w).data(), &[0.95, -0.95]);
        // Gradients are cleared after the step.
        assert_eq!(p.grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(&[1]));
        let mut opt = Sgd::with_momentum(1.0, 0.5);
        for _ in 0..2 {
            p.grad_mut(w).data_mut()[0] = 1.0;
            opt.step(&mut p);
        }
        // v1 = 1, x = -1; v2 = 1.5, x = -2.5
        assert!((p.value(w).data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, |first Adam update| == lr regardless of
        // gradient magnitude.
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(&[1]));
        p.grad_mut(w).data_mut()[0] = 123.0;
        let mut opt = Adam::with_lr(0.01);
        opt.step(&mut p);
        assert!((p.value(w).data()[0] + 0.01).abs() < 1e-4);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize (w - 3)^2 — gradient 2(w-3).
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(&[1]));
        let mut opt = Adam::with_lr(0.1);
        for _ in 0..300 {
            let wv = p.value(w).data()[0];
            p.grad_mut(w).data_mut()[0] = 2.0 * (wv - 3.0);
            opt.step(&mut p);
        }
        assert!((p.value(w).data()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn weight_decay_shrinks() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::from_vec(&[1], vec![10.0]).unwrap());
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.1,
            ..AdamConfig::default()
        });
        // Zero gradient: only decay acts.
        opt.step(&mut p);
        assert!(p.value(w).data()[0] < 10.0);
    }

    #[test]
    fn lr_schedules() {
        let c = LrSchedule::Constant;
        assert_eq!(c.lr_at(0.1, 1), 0.1);
        let w = LrSchedule::LinearWarmup { warmup_steps: 10 };
        assert!((w.lr_at(1.0, 5) - 0.5).abs() < 1e-6);
        assert_eq!(w.lr_at(1.0, 10), 1.0);
        assert_eq!(w.lr_at(1.0, 100), 1.0);
        let wc = LrSchedule::WarmupCosine {
            warmup_steps: 10,
            total_steps: 110,
        };
        assert!((wc.lr_at(1.0, 5) - 0.5).abs() < 1e-6);
        assert!((wc.lr_at(1.0, 60) - 0.5).abs() < 1e-6); // cosine midpoint
        assert_eq!(wc.lr_at(1.0, 110), 0.0);
        assert_eq!(wc.lr_at(1.0, 500), 0.0);
        // Degenerate warmup never divides by zero.
        let z = LrSchedule::LinearWarmup { warmup_steps: 0 };
        assert_eq!(z.lr_at(1.0, 1), 1.0);
    }

    #[test]
    fn grad_clip_limits_norm() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(&[2]));
        p.grad_mut(w).data_mut().copy_from_slice(&[3.0, 4.0]);
        let clip = GradClip { max_norm: 1.0 };
        let pre = clip.apply(&mut p);
        assert_eq!(pre, 5.0);
        assert!((p.grad_l2_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn grad_clip_noop_under_limit() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::zeros(&[2]));
        p.grad_mut(w).data_mut().copy_from_slice(&[0.3, 0.4]);
        GradClip { max_norm: 1.0 }.apply(&mut p);
        assert_eq!(p.grad(w).data(), &[0.3, 0.4]);
    }
}
