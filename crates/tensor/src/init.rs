//! Weight initialization schemes.

use crate::tensor::Tensor;

/// Weight initialization scheme for model parameters.
///
/// All schemes are deterministic given the seed passed to
/// [`Init::tensor`], so model construction is reproducible across
/// federated sites (every site starts from the same global model, as the
/// NVFlare server distributes the initial weights).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Init {
    /// All zeros (biases, layer-norm shift).
    Zeros,
    /// All ones (layer-norm gain).
    Ones,
    /// Normal with the given standard deviation (BERT uses 0.02).
    Normal(f32),
    /// Xavier/Glorot uniform for a `[fan_in, fan_out]` matrix.
    XavierUniform,
}

impl Init {
    /// Materializes a tensor of shape `dims` under this scheme.
    ///
    /// For [`Init::XavierUniform`], `dims` must be rank-2 (`[fan_in,
    /// fan_out]`).
    ///
    /// # Panics
    ///
    /// Panics if `XavierUniform` is used with a non-rank-2 shape.
    pub fn tensor(self, dims: &[usize], seed: u64) -> Tensor {
        match self {
            Init::Zeros => Tensor::zeros(dims),
            Init::Ones => Tensor::ones(dims),
            Init::Normal(std) => Tensor::randn(dims, std, seed),
            Init::XavierUniform => {
                assert_eq!(
                    dims.len(),
                    2,
                    "XavierUniform requires a rank-2 shape, got {dims:?}"
                );
                let bound = (6.0 / (dims[0] + dims[1]) as f32).sqrt();
                Tensor::rand_uniform(dims, -bound, bound, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        assert!(Init::Zeros.tensor(&[3], 0).data().iter().all(|&v| v == 0.0));
        assert!(Init::Ones.tensor(&[3], 0).data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn normal_std_scales() {
        let t = Init::Normal(0.02).tensor(&[1000], 9);
        let std = (t.data().iter().map(|v| v * v).sum::<f32>() / 1000.0).sqrt();
        assert!((std - 0.02).abs() < 0.005, "std {std}");
    }

    #[test]
    fn xavier_bounds() {
        let t = Init::XavierUniform.tensor(&[100, 50], 4);
        let bound = (6.0 / 150.0f32).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            Init::Normal(1.0).tensor(&[8], 42),
            Init::Normal(1.0).tensor(&[8], 42)
        );
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn xavier_rank1_panics() {
        Init::XavierUniform.tensor(&[10], 0);
    }
}
